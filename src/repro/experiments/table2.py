"""Table II: the server-side metric catalogue.

Table II defines the server metrics the framework collects (I/O speed,
device sector counters, read/write queue statistics). This experiment
validates the catalogue end-to-end: under a mixed data+metadata load,
every metric must be collected for every server, be finite, and the
load-bearing ones must actually move — a metric that stays zero under
load would silently starve the model of its signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import render_table
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.monitor.schema import SERVER_METRICS
from repro.workloads.io500 import make_io500_task

__all__ = ["Table2Result", "run_table2"]


@dataclass
class Table2Result:
    """Per-metric activity summary across all servers."""

    #: metric -> (total across run, fraction of samples where non-zero)
    totals: dict[str, float]
    nonzero_fraction: dict[str, float]
    n_samples: int

    def render(self) -> str:
        metrics = list(self.totals)
        values = np.array(
            [[self.totals[m], self.nonzero_fraction[m]] for m in metrics]
        )
        return render_table(metrics, ["total", "nonzero_frac"], values,
                            corner="metric", fmt="{:.3g}")

    def moved(self, metric: str) -> bool:
        return self.totals[metric] > 0


def run_table2(config: ExperimentConfig | None = None,
               scale: float = 0.25,
               cache=None,
               executor=None) -> Table2Result:
    """Collect every Table II metric under a mixed representative load.

    The single run is routed through a :class:`repro.parallel.
    SweepExecutor` so a warm ``cache`` replays it without simulating.
    """
    from repro.parallel import RunJob, SweepExecutor

    config = config or ExperimentConfig()
    executor = executor or SweepExecutor(cache=cache)
    target = make_io500_task("ior-easy-write", ranks=4, scale=scale)
    noise = (
        InterferenceSpec("ior-easy-read", instances=1, ranks=2, scale=scale),
        InterferenceSpec("mdt-hard-write", instances=1, ranks=2, scale=scale),
    )
    run = executor.run_one(RunJob(target, noise, config, seed_salt="table2"))
    totals = {m: 0.0 for m in SERVER_METRICS}
    nonzero = {m: 0 for m in SERVER_METRICS}
    for _, _, metrics in run.server_samples:
        for m in SERVER_METRICS:
            value = metrics[m]
            if not np.isfinite(value):
                raise RuntimeError(f"metric {m} produced a non-finite sample")
            totals[m] += value
            if value != 0:
                nonzero[m] += 1
    n = len(run.server_samples)
    return Table2Result(
        totals=totals,
        nonzero_fraction={m: nonzero[m] / max(1, n) for m in SERVER_METRICS},
        n_samples=n,
    )
