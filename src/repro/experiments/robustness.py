"""Robustness (A8): prediction quality under telemetry faults.

The paper's monitors are assumed healthy: every server sample arrives,
every client window is populated.  Real deployments lose telemetry — a
monitor daemon restarts, a node's forwarder backs up, a collection
window ships empty — and a predictor that falls apart the moment its
inputs go gappy is not deployable.  This experiment measures that cliff:
an interference-trained predictor is scored on the fail-slow harness
(reused from A7, so the ground-truth labels come from *client-side
records* and are untouched by server-telemetry faults) while
:func:`repro.faults.apply_faults` degrades the telemetry at increasing
sample-drop and window-blanking rates, once per gap-imputation policy.

Two curves per policy come out of it:

* **macro F1 vs sample-loss rate** — server samples dropped uniformly;
* **macro F1 vs window-blank rate** — whole client windows blanked
  (the client monitor shipped nothing for the window).

Fault injection is deterministic (every decision derives from the
:class:`~repro.faults.FaultPlan` seed), so the curves are exactly
reproducible, and faults are applied *post-hoc* to the collected runs —
one simulation sweep serves the whole fault grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.labeling import BINARY_THRESHOLDS, DegradationLabeller
from repro.core.metrics import evaluate
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    bank_to_dataset,
    collect_windows,
    standard_scenarios,
)
from repro.experiments.failslow import run_failslow_run
from repro.experiments.runner import ExperimentConfig
from repro.faults import FaultPlan, apply_faults
from repro.monitor.aggregator import GAP_POLICIES, MonitoredRun, assemble_vectors
from repro.obs.log import get_logger
from repro.workloads.io500 import make_io500_task

__all__ = ["RobustnessResult", "run_robustness"]

logger = get_logger("experiments.robustness")


@dataclass
class RobustnessResult:
    """Macro-F1 degradation curves under telemetry faults.

    ``rows`` holds one entry per (fault kind, rate, gap policy) cell:
    ``{"fault", "rate", "policy", "macro_f1", "accuracy", "gap_fraction",
    "n_windows"}``.  Rate 0.0 rows are the fault-free reference.
    """

    rows: list[dict] = field(default_factory=list)
    n_eval_windows: int = 0
    class_counts: list[int] = field(default_factory=list)
    fault_seed: int = 0

    def curve(self, fault: str, policy: str) -> list[tuple[float, float]]:
        """(rate, macro F1) points of one degradation curve, rate-sorted."""
        pts = [(row["rate"], row["macro_f1"]) for row in self.rows
               if row["fault"] == fault and row["policy"] == policy]
        return sorted(pts)

    def render(self) -> str:
        lines = [
            "== robustness: F1 under telemetry faults "
            "(interference-trained model, fail-slow eval) ==",
            f"eval windows={self.n_eval_windows} "
            f"classes={self.class_counts} fault_seed={self.fault_seed}",
            "",
            f"{'fault':<8} {'rate':>6} {'policy':>8} {'macroF1':>9} "
            f"{'acc':>7} {'gaps':>7}",
        ]
        for row in self.rows:
            lines.append(
                f"{row['fault']:<8} {row['rate']:>6.2f} "
                f"{row['policy']:>8} {row['macro_f1']:>9.3f} "
                f"{row['accuracy']:>7.3f} {row['gap_fraction']:>7.3f}"
            )
        return "\n".join(lines)

    def to_report(self) -> dict:
        """JSON-ready fault report (the CI artifact)."""
        return {
            "experiment": "robustness",
            "n_eval_windows": self.n_eval_windows,
            "class_counts": self.class_counts,
            "fault_seed": self.fault_seed,
            "rows": [dict(row) for row in self.rows],
        }


def _train_predictor(
    config: ExperimentConfig,
    target_scale: float,
    noise_scale: float,
    max_level: int,
    executor,
    epochs: int,
    trainer=None,
    store=None,
) -> InterferencePredictor:
    """A small interference-trained binary predictor (the A7 recipe)."""
    target = make_io500_task("ior-easy-write", ranks=2, scale=target_scale)
    scenarios = standard_scenarios(
        max_level=max_level,
        tasks=("ior-easy-write", "mdt-hard-write"),
        ranks=2, scale=noise_scale,
    )
    bank = collect_windows([target], scenarios, config, executor=executor,
                           store=store)
    dataset = bank_to_dataset(bank, BINARY_THRESHOLDS, source="robustness")
    train_cfg = TrainConfig(epochs=epochs, seed=config.seed)
    if trainer is not None:
        return trainer.train_predictor(dataset,
                                       thresholds=BINARY_THRESHOLDS,
                                       config=train_cfg, restarts=2)
    return InterferencePredictor.train(
        dataset, BINARY_THRESHOLDS, config=train_cfg, restarts=2,
    )


def _eval_faulted(
    predictor: InterferencePredictor,
    runs: list[tuple[MonitoredRun, dict[int, int]]],
    plan: FaultPlan | None,
    policy: str,
    config: ExperimentConfig,
) -> dict:
    """Score the predictor on the eval runs under one fault condition."""
    y_parts: list[int] = []
    pred_parts: list[np.ndarray] = []
    gap_cells = 0
    total_cells = 0
    for run, labels in runs:
        faulted = apply_faults(run, plan, config.window_size) \
            if plan is not None else run
        X, windows, mask = assemble_vectors(
            faulted, config.window_size, config.sample_interval,
            gap_policy=policy, return_mask=True,
        )
        gap_cells += int((~mask).sum())
        total_cells += mask.size
        keep = [i for i, w in enumerate(windows) if w in labels]
        if not keep:
            continue
        y_parts.extend(labels[windows[i]] for i in keep)
        pred_parts.append(predictor.predict(X[keep]))
    y = np.array(y_parts)
    preds = np.concatenate(pred_parts) if pred_parts else np.array([], int)
    report = evaluate(y, preds, n_classes=predictor.n_classes)
    return {
        "macro_f1": float(report.macro_f1),
        "accuracy": float(report.accuracy),
        "gap_fraction": gap_cells / total_cells if total_cells else 0.0,
        "n_windows": int(len(y)),
    }


def run_robustness(
    config: ExperimentConfig | None = None,
    target_scale: float = 0.3,
    noise_scale: float = 0.2,
    max_level: int = 2,
    drop_rates: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
    blank_rates: tuple[float, ...] = (0.0, 0.2, 0.4),
    gap_policies: tuple[str, ...] = GAP_POLICIES,
    slow_factors: tuple[float, ...] = (4.0, 8.0),
    fault_seed: int = 1,
    epochs: int = 60,
    executor=None,
    trainer=None,
    store=None,
) -> RobustnessResult:
    """Measure prediction F1 vs telemetry sample loss and window blanking.

    Trains a binary interference predictor, collects fail-slow eval runs
    once, then sweeps ``drop_rates`` x ``gap_policies`` and
    ``blank_rates`` x ``gap_policies`` over *post-hoc* fault injections
    of those runs.  Ground-truth labels are computed from the clean
    client records before any fault is applied, so the curves isolate
    the predictor's sensitivity to degraded inputs.
    """
    config = config or ExperimentConfig()
    for policy in gap_policies:
        if policy not in GAP_POLICIES:
            raise ValueError(f"unknown gap policy {policy!r}")
    predictor = _train_predictor(config, target_scale, noise_scale,
                                 max_level, executor, epochs,
                                 trainer=trainer, store=store)

    # Eval runs: the fail-slow harness (quiet cluster, sick OSTs), whose
    # labels come from client records and survive telemetry faults.
    target = make_io500_task("ior-easy-write", name="robust-eval", ranks=2,
                             scale=target_scale)
    labeller = DegradationLabeller(window_size=config.window_size,
                                   thresholds=predictor.thresholds)
    baseline = run_failslow_run(target, config, slow_factor=1.0,
                                seed_salt="robust-base")
    runs: list[tuple[MonitoredRun, dict[int, int]]] = []
    for factor in (1.0, *slow_factors):
        run = run_failslow_run(target, config, slow_factor=factor,
                               seed_salt=f"robust-{factor}")
        labels = labeller.window_labels(baseline.records, run.records,
                                        target.name)
        if labels:
            runs.append((run, labels))
    if not runs:
        raise RuntimeError("robustness eval runs produced no labelled windows")

    grid: list[tuple[str, float, FaultPlan | None]] = []
    for rate in drop_rates:
        grid.append(("drop", rate,
                     FaultPlan(seed=fault_seed, sample_drop_rate=rate)
                     if rate else None))
    for rate in blank_rates:
        grid.append(("blank", rate,
                     FaultPlan(seed=fault_seed, window_blank_rate=rate)
                     if rate else None))

    result = RobustnessResult(fault_seed=fault_seed)
    for policy in gap_policies:
        for fault, rate, plan in grid:
            cell = _eval_faulted(predictor, runs, plan, policy, config)
            result.rows.append({"fault": fault, "rate": rate,
                                "policy": policy, **cell})
            logger.info("robustness %s rate=%.2f policy=%s -> F1=%.3f "
                        "(gaps %.1f%%)", fault, rate, policy,
                        cell["macro_f1"], 100 * cell["gap_fraction"])
    result.n_eval_windows = max(row["n_windows"] for row in result.rows)
    y_all = np.concatenate([np.array(sorted(labels.values()))
                            for _, labels in runs])
    counts = np.bincount(y_all, minlength=predictor.n_classes)
    result.class_counts = [int(c) for c in counts]
    return result
