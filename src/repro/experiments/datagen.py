"""Labelled-dataset generation from interference scenario sweeps.

The paper trains per-benchmark models on windows collected while the
target runs under "varying levels of background I/O requests (using
IO500) to cover different types and levels of I/O interference" (§III-D).
A :class:`Scenario` is one such condition (which noise tasks, how many
concurrent instances). :func:`collect_windows` sweeps targets x scenarios
and returns a :class:`WindowBank` holding per-server vectors plus raw
degradation *levels*; binning into class labels happens afterwards
(:func:`bank_to_dataset`), so the binary (Figure 3/5) and 3-class
(Figure 4) datasets share one expensive simulation sweep.

The sweep itself runs on :class:`repro.parallel.SweepExecutor`: pairs
are independent, so ``n_jobs`` fans them over worker processes with
bit-identical output, every scenario of a target reuses one baseline
run, and a ``cache`` directory persists runs across invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dataset import Dataset
from repro.core.labeling import BINARY_THRESHOLDS, DegradationLabeller, bin_level
from repro.monitor.aggregator import assemble_vectors, select_labelled
from repro.workloads.base import Workload
from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    PairedRuns,
    run_pair,
)

if TYPE_CHECKING:  # imported lazily at run time (circular with repro.parallel)
    from repro.data import DatasetStore
    from repro.parallel import RunCache, SweepExecutor

__all__ = [
    "Scenario",
    "WindowBank",
    "standard_scenarios",
    "sweep_pairs",
    "label_pair",
    "collect_windows",
    "bank_to_dataset",
    "generate_dataset",
]


@dataclass(frozen=True)
class Scenario:
    """One interference condition for data collection."""

    name: str
    interference: tuple[InterferenceSpec, ...] = ()

    @property
    def is_baseline(self) -> bool:
        return not self.interference


@dataclass
class WindowBank:
    """Collected windows with raw degradation levels (not yet binned)."""

    X: np.ndarray  # (n, servers, features)
    levels: np.ndarray  # (n,) mean per-op slowdown ratios
    sources: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.X) != len(self.levels):
            raise ValueError("X and levels length mismatch")

    def __len__(self) -> int:
        return len(self.levels)

    @staticmethod
    def concatenate(parts: list["WindowBank"]) -> "WindowBank":
        if not parts:
            raise RuntimeError("no labelled windows were produced")
        return WindowBank(
            np.concatenate([p.X for p in parts]),
            np.concatenate([p.levels for p in parts]),
            sources=[s for p in parts for s in p.sources],
        )


def standard_scenarios(
    max_level: int = 3,
    tasks: tuple[str, ...] = ("ior-easy-write", "ior-hard-write", "mdt-hard-write"),
    ranks: int = 2,
    scale: float = 0.25,
) -> list[Scenario]:
    """The paper's sweep: increasing instance counts of IO500 noise.

    Produces one quiet scenario plus ``max_level`` intensities per noise
    task type ("repeated three times with increasing amounts of
    concurrent instances of IO500").
    """
    scenarios = [Scenario("quiet")]
    for task in tasks:
        for level in range(1, max_level + 1):
            scenarios.append(
                Scenario(
                    f"{task}-x{level}",
                    (InterferenceSpec(task, instances=level, ranks=ranks,
                                      scale=scale),),
                )
            )
    return scenarios


def label_pair(
    labeller: DegradationLabeller,
    target: Workload,
    scenario: Scenario,
    pair: PairedRuns,
    config: ExperimentConfig,
) -> WindowBank | None:
    """Label one pair's windows against its baseline, or ``None`` if empty.

    The single shared post-processing step of the in-memory dataset path
    (:func:`collect_windows`) and the columnar on-disk path
    (:class:`repro.data.DatasetStore`): both produce per-window vectors
    and raw levels through exactly this code, which is what makes the
    store's assembled dataset bit-identical to the in-memory one.
    Windows without matched target operations carry no label and are
    dropped (the paper's labelling is defined over windows with I/O).
    """
    run = pair.interfered
    levels = labeller.window_levels(
        pair.baseline.records, run.records, target.name
    )
    if not levels:
        return None
    X, windows = assemble_vectors(run, config.window_size,
                                  config.sample_interval)
    keep = select_labelled(windows, levels)
    if not keep:
        return None
    return WindowBank(
        X[keep],
        np.array([levels[w] for w in keep]),
        sources=[f"{target.name}:{scenario.name}"] * len(keep),
    )


def _skip_pair(target: Workload, scenario: Scenario) -> None:
    """Count and log one quarantined pair (sweeps degrade, never crash)."""
    from repro.obs.log import get_logger
    from repro.obs.metrics import REGISTRY

    REGISTRY.counter("datagen.pairs_skipped").inc()
    get_logger("experiments.datagen").warning(
        "skipping pair %s:%s (run quarantined)", target.name, scenario.name,
    )


def sweep_pairs(
    targets: list[Workload],
    scenarios: list[Scenario],
    include_quiet_windows: bool = True,
) -> list[tuple[Workload, Scenario]]:
    """The (target, scenario) grid of one dataset sweep, in sweep order."""
    return [
        (target, scenario)
        for target in targets
        for scenario in scenarios
        if not (scenario.is_baseline and not include_quiet_windows)
    ]


def collect_windows(
    targets: list[Workload],
    scenarios: list[Scenario],
    config: ExperimentConfig,
    include_quiet_windows: bool = True,
    n_jobs: int = 1,
    cache: "RunCache | str | None" = None,
    executor: "SweepExecutor | None" = None,
    store: "DatasetStore | None" = None,
) -> WindowBank:
    """Run every (target, scenario) pair and label windows with levels.

    The sweep is delegated to a :class:`repro.parallel.SweepExecutor`
    (pass ``executor`` to share one across experiments, or just
    ``n_jobs``/``cache``).  Parallel execution is bit-identical to
    serial: per-run seeds derive from the config seed and stable string
    paths, and results are consumed in submission order.

    With a ``store`` (:class:`repro.data.DatasetStore`) the collection
    goes out-of-core: only pairs whose labelled windows are not already
    on disk are simulated, new windows append as columnar shards, and
    the returned bank's ``X`` is a read-only memmap — bit-identical
    content, peak RSS bounded by shard size instead of dataset size.
    """
    from repro.obs import profile as _profile
    from repro.parallel import PairJob, SweepExecutor

    executor = executor or SweepExecutor(n_jobs=n_jobs, cache=cache)
    if store is not None:
        return store.build_bank(targets, scenarios, config,
                                include_quiet_windows=include_quiet_windows,
                                executor=executor)
    labeller = DegradationLabeller(window_size=config.window_size)
    sweep = sweep_pairs(targets, scenarios, include_quiet_windows)
    with _profile.phase("dataset-sweep", pairs=len(sweep)):
        paired = executor.run_pairs([
            PairJob(target, tuple(scenario.interference), config,
                    seed_salt=scenario.name)
            for target, scenario in sweep
        ])
    with _profile.phase("dataset-label"):
        parts: list[WindowBank] = []
        for (target, scenario), pair in zip(sweep, paired):
            if pair is None:
                _skip_pair(target, scenario)
                continue
            part = label_pair(labeller, target, scenario, pair, config)
            if part is not None:
                parts.append(part)
        return WindowBank.concatenate(parts)


def bank_to_dataset(
    bank: WindowBank,
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
    source: str = "",
) -> Dataset:
    """Bin a window bank's levels into severity classes."""
    from repro.monitor.schema import VECTOR_FEATURES
    from repro.obs import profile as _profile

    with _profile.phase("dataset-assemble", windows=len(bank)):
        y = np.array([bin_level(lv, thresholds) for lv in bank.levels])
        n_feats = bank.X.shape[2]
        names = (VECTOR_FEATURES if n_feats == len(VECTOR_FEATURES)
                 else tuple(f"f{i}" for i in range(n_feats)))
        return Dataset(bank.X, y, feature_names=names, source=source)


def generate_dataset(
    targets: list[Workload],
    scenarios: list[Scenario],
    config: ExperimentConfig,
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
    include_quiet_windows: bool = True,
    source: str = "",
    n_jobs: int = 1,
    cache: "RunCache | str | None" = None,
    executor: "SweepExecutor | None" = None,
    store: "DatasetStore | None" = None,
) -> Dataset:
    """One-shot convenience: collect windows and bin them."""
    bank = collect_windows(targets, scenarios, config, include_quiet_windows,
                           n_jobs=n_jobs, cache=cache, executor=executor,
                           store=store)
    return bank_to_dataset(bank, thresholds, source=source)
