"""Cross-cluster adaptation (A5): the paper's portability claim.

The paper states "the framework can be easily adapted to different
clusters" (§VI). This experiment measures three adaptation paths from the
default testbed shape (cluster A: 3 OSS x 2 OST) to a different topology
(cluster B: 4 OSS x 2 OST, i.e. 8 OSTs + MDT = 9 servers):

* ``kernel-retrained-on-B`` — the paper's path: recollect data on B and
  retrain the kernel network (whose head is sized to B's server count);
* ``settransformer-zero-shot`` — train the set-attention extension on A
  and apply it to B *without retraining*: mean pooling over the server
  axis makes it server-count agnostic (something the kernel network's
  fixed-width head cannot do);
* ``settransformer-retrained-on-B`` — the attention model's ceiling on B.

Scores are macro-F1 on B's held-out windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.dataset import Dataset, Normalizer, train_test_split
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.metrics import ClassificationReport, evaluate
from repro.core.nn.attention import SetTransformerClassifier
from repro.core.nn.train import TrainConfig, train_classifier
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import bank_to_dataset, collect_windows
from repro.experiments.fig3 import DEFAULT_NOISE_TASKS
from repro.experiments.datagen import standard_scenarios
from repro.experiments.runner import ExperimentConfig
from repro.sim.cluster import ClusterConfig
from repro.workloads.io500 import make_io500_task

if TYPE_CHECKING:
    from repro.parallel import TrainExecutor

__all__ = ["CrossClusterResult", "run_cross_cluster"]


@dataclass
class CrossClusterResult:
    """Macro-F1 per adaptation arm, evaluated on cluster B."""

    scores: dict[str, float] = field(default_factory=dict)
    reports: dict[str, ClassificationReport] = field(default_factory=dict,
                                                     repr=False)
    n_windows_a: int = 0
    n_windows_b: int = 0

    def render(self) -> str:
        lines = [
            "== cross-cluster adaptation (evaluated on cluster B) ==",
            f"  windows: A={self.n_windows_a} B={self.n_windows_b}",
        ]
        for arm, score in sorted(self.scores.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {arm:34s} macro_f1={score:.3f}")
        return "\n".join(lines)


def _train_set_transformer(dataset: Dataset, seed: int,
                           config: TrainConfig) -> tuple:
    norm = Normalizer().fit(dataset.X)
    model = SetTransformerClassifier(
        n_servers=dataset.n_servers,
        n_features=dataset.n_features,
        n_classes=2,
        dim=32,
        n_heads=4,
        n_blocks=2,
        seed=seed,
    )
    train_classifier(model, norm.transform(dataset.X), dataset.y, config)
    return model, norm


def run_cross_cluster(
    config: ExperimentConfig | None = None,
    target_tasks: tuple[str, ...] = ("ior-easy-read", "ior-hard-read",
                                     "ior-easy-write", "ior-hard-write",
                                     "mdt-hard-write"),
    target_scale: float = 1.0,
    max_level: int = 3,
    noise_scale: float = 0.25,
    seed: int = 0,
    trainer: "TrainExecutor | None" = None,
    store=None,
) -> CrossClusterResult:
    """Collect data on clusters A and B; score the three adaptation arms.

    Both clusters' windows may share one ``store`` — their shard keys
    embed the full cluster config, so A and B never collide in it.
    """
    config = config or ExperimentConfig()
    cluster_b = replace(config.cluster, n_oss=4)
    config_b = replace(config, cluster=cluster_b)

    targets = [make_io500_task(t, ranks=4, scale=target_scale)
               for t in target_tasks]
    scenarios = standard_scenarios(max_level=max_level,
                                   tasks=DEFAULT_NOISE_TASKS,
                                   ranks=3, scale=noise_scale)
    bank_a = collect_windows(targets, scenarios, config, store=store)
    bank_b = collect_windows(targets, scenarios, config_b, store=store)
    ds_a = bank_to_dataset(bank_a, BINARY_THRESHOLDS, source="clusterA")
    ds_b = bank_to_dataset(bank_b, BINARY_THRESHOLDS, source="clusterB")
    train_b, test_b = train_test_split(ds_b, 0.2, seed=seed)

    result = CrossClusterResult(n_windows_a=len(ds_a), n_windows_b=len(ds_b))
    train_cfg = TrainConfig(seed=seed)

    # Arm 1: the paper's adaptation path — retrain the kernel net on B.
    if trainer is not None:
        kernel_b = trainer.train_predictor(train_b,
                                           thresholds=BINARY_THRESHOLDS,
                                           config=train_cfg, seed=seed)
    else:
        kernel_b = InterferencePredictor.train(train_b, BINARY_THRESHOLDS,
                                               config=train_cfg, seed=seed)
    report = kernel_b.evaluate(test_b)
    result.scores["kernel-retrained-on-B"] = report.macro_f1
    result.reports["kernel-retrained-on-B"] = report

    # Arm 2: set-transformer trained on A, applied to B zero-shot.
    st_a, norm_a = _train_set_transformer(ds_a, seed, train_cfg)
    preds = st_a.predict(norm_a.transform(test_b.X))
    report = evaluate(test_b.y, preds, n_classes=2)
    result.scores["settransformer-zero-shot"] = report.macro_f1
    result.reports["settransformer-zero-shot"] = report

    # Arm 3: set-transformer retrained on B (ceiling).
    st_b, norm_b = _train_set_transformer(train_b, seed, train_cfg)
    preds = st_b.predict(norm_b.transform(test_b.X))
    report = evaluate(test_b.y, preds, n_classes=2)
    result.scores["settransformer-retrained-on-B"] = report.macro_f1
    result.reports["settransformer-retrained-on-B"] = report
    return result
