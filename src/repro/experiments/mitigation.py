"""Prediction-driven mitigation (A9): closing the paper's loop.

The paper positions itself as "complementary to mitigation strategies"
and "helpful to motivate more effective" ones (§V): a quantitative
predictor tells the system *when* and *how hard* to act. This experiment
demonstrates exactly that composition:

1. the target runs under bulk write noise with the streaming predictor
   attached;
2. whenever ``trigger`` consecutive windows are predicted at or above the
   alarm severity, a token-bucket rate limit (Lustre-TBF-style, Qian et
   al.) is installed on every OST for the noise jobs;
3. when predictions calm down, the limit is lifted — mitigation is
   *targeted*, not the uniform treatment the paper criticises.

Compared against (a) no mitigation and (b) an always-on static limit, the
prediction-driven policy should recover most of the target's performance
while throttling the noise only while it actually hurts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import derive_seed
from repro.core.online import StreamingPredictor, WindowPrediction
from repro.core.predictor import InterferencePredictor
from repro.monitor.server_monitor import ServerMonitor
from repro.sim.cluster import Cluster
from repro.workloads.base import Workload, launch, launch_interference
from repro.experiments.runner import ExperimentConfig, InterferenceSpec

__all__ = ["MitigationResult", "run_mitigation"]


@dataclass
class MitigationResult:
    """Target performance under the compared mitigation policies."""

    #: policy -> mean data-op latency of the target (seconds).
    mean_latency: dict[str, float] = field(default_factory=dict)
    #: policy -> total simulated seconds the noise was throttled.
    throttled_time: dict[str, float] = field(default_factory=dict)
    alarms: int = 0
    #: Seconds the predictive policy throttled during a *quiet* control
    #: run (no noise at all) — its false-alarm cost. Targeted mitigation
    #: means this stays ~0 while the noisy-run improvement is large.
    quiet_false_alarm_time: float = 0.0

    def render(self) -> str:
        lines = [f"{'policy':>22} {'target latency':>16} {'noise throttled':>16}"]
        for policy in ("none", "predictive", "static"):
            if policy in self.mean_latency:
                lines.append(
                    f"{policy:>22} {self.mean_latency[policy] * 1e3:>13.2f} ms"
                    f" {self.throttled_time.get(policy, 0.0):>13.2f} s "
                )
        lines.append(f"predictive alarms fired: {self.alarms}")
        lines.append(
            f"false-alarm throttling on a quiet run: "
            f"{self.quiet_false_alarm_time:.2f} s"
        )
        return "\n".join(lines)

    def improvement(self, policy: str) -> float:
        """Latency improvement factor of ``policy`` over no mitigation."""
        return self.mean_latency["none"] / self.mean_latency[policy]


def _run_policy(
    policy: str,
    predictor: InterferencePredictor | None,
    target: Workload,
    noise_specs: list[InterferenceSpec],
    config: ExperimentConfig,
    limit_rate: float,
    alarm_severity: int,
    trigger: int,
) -> tuple[float, float, int]:
    """One run under a policy; returns (mean latency, throttled secs, alarms)."""
    cluster = Cluster(config.cluster)
    monitor = ServerMonitor(cluster, sample_interval=config.sample_interval)
    monitor.start()
    noise_jobs: list[str] = []
    noise_nodes = list(config.noise_nodes)
    for spec_idx, spec in enumerate(noise_specs):
        for copy in range(spec.instances):
            workload = spec.build(copy)
            workload.name = f"{workload.name}-{spec_idx}"
            noise_jobs.append(workload.name)
            seed = derive_seed(config.seed, "noise", policy, spec_idx, copy)
            launch_interference(cluster, workload, noise_nodes, seed,
                                record=False)

    throttle_state = {"since": None, "total": 0.0, "alarms": 0, "streak": 0}

    def set_throttle(enabled: bool) -> None:
        now = cluster.env.now
        if enabled and throttle_state["since"] is None:
            throttle_state["since"] = now
            throttle_state["alarms"] += 1
            for ost in cluster.osts:
                for job in noise_jobs:
                    ost.qos.limit(job, rate=limit_rate, burst=limit_rate)
        elif not enabled and throttle_state["since"] is not None:
            throttle_state["total"] += now - throttle_state["since"]
            throttle_state["since"] = None
            for ost in cluster.osts:
                for job in noise_jobs:
                    ost.qos.clear(job)

    if policy == "static":
        set_throttle(True)
    elif policy == "predictive":
        if predictor is None:
            raise ValueError("predictive policy needs a predictor")

        def on_prediction(pred: WindowPrediction) -> None:
            if pred.severity >= alarm_severity:
                throttle_state["streak"] += 1
                if throttle_state["streak"] >= trigger:
                    set_throttle(True)
            else:
                throttle_state["streak"] = 0
                set_throttle(False)

        streaming = StreamingPredictor(
            predictor=predictor,
            cluster=cluster,
            monitor=monitor,
            job=target.name,
            window_size=config.window_size,
            on_prediction=on_prediction,
        )
        streaming.start()

    if config.warmup > 0:
        cluster.env.run(until=config.warmup)
    handle = launch(cluster, target, list(config.target_nodes),
                    derive_seed(config.seed, "target", target.name))
    cluster.env.run(until=handle.done)
    set_throttle(False)  # account for trailing throttle time

    records = [r for r in cluster.collector.records
               if r.job == target.name and r.op.is_data]
    if not records:
        raise RuntimeError("target issued no data operations")
    mean_latency = float(np.mean([r.duration for r in records]))
    if policy == "static":
        throttled = cluster.env.now - config.warmup
    else:
        throttled = throttle_state["total"]
    return mean_latency, throttled, throttle_state["alarms"]


def run_mitigation(
    predictor: InterferencePredictor,
    target: Workload,
    config: ExperimentConfig | None = None,
    noise_specs: list[InterferenceSpec] | None = None,
    limit_rate: float = 20e6,
    alarm_severity: int = 1,
    trigger: int = 1,
) -> MitigationResult:
    """Compare no / predictive / static mitigation for one scenario."""
    config = config or ExperimentConfig()
    noise_specs = noise_specs or [
        InterferenceSpec("ior-easy-write", instances=3, ranks=3, scale=0.25)
    ]
    result = MitigationResult()
    for policy in ("none", "predictive", "static"):
        latency, throttled, alarms = _run_policy(
            policy, predictor if policy == "predictive" else None,
            target, noise_specs, config, limit_rate, alarm_severity, trigger,
        )
        result.mean_latency[policy] = latency
        result.throttled_time[policy] = throttled
        if policy == "predictive":
            result.alarms = alarms
    # Control: the predictive policy on a quiet run must not throttle.
    _, quiet_throttled, _ = _run_policy(
        "predictive", predictor, target, [], config, limit_rate,
        alarm_severity, trigger,
    )
    result.quiet_false_alarm_time = quiet_throttled
    return result
