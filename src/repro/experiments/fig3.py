"""Figures 3(a)/3(b): binary interference prediction on IO500 and DLIO.

The paper trains the binary (>= 2x slowdown) classifier on windows from
each benchmark family and evaluates on a random 20% held-out split,
reporting confusion matrices with high accuracy on both. This module
generates the per-family window banks, trains the kernel network and
returns the full report (matrix, P/R/F1, class balance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.dataset import Dataset, train_test_split
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.metrics import ClassificationReport
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    Scenario,
    WindowBank,
    bank_to_dataset,
    collect_windows,
    standard_scenarios,
)
from repro.experiments.reporting import render_matrix
from repro.experiments.runner import ExperimentConfig
from repro.workloads.dlio import DLIOConfig, DLIOWorkload
from repro.workloads.io500 import IO500_TASKS, make_io500_task

if TYPE_CHECKING:  # imported lazily at run time (circular with repro.parallel)
    from repro.parallel import TrainExecutor

__all__ = ["ModelEvalResult", "evaluate_bank", "evaluate_banks",
           "run_fig3_io500", "run_fig3_dlio",
           "collect_io500_bank", "collect_dlio_bank"]


@dataclass
class ModelEvalResult:
    """One trained-and-evaluated scenario (one panel of Figures 3-5)."""

    name: str
    report: ClassificationReport
    train_counts: list[int]
    test_counts: list[int]
    n_windows: int
    predictor: InterferencePredictor

    def render(self) -> str:
        classes = [f"bin{i}" for i in range(self.report.n_classes)]
        if self.report.n_classes == 2:
            classes = ["<2x", ">=2x"]
        elif self.report.n_classes == 3:
            classes = ["<2x", "2-5x", ">=5x"]
        body = render_matrix(self.name, self.report.confusion, classes)
        return (
            f"{body}\n{self.report.summary()}\n"
            f"train={self.train_counts} test={self.test_counts}"
        )


def _bank_result(name: str, predictor: InterferencePredictor,
                 dataset: Dataset, train_set: Dataset, test_set: Dataset,
                 thresholds: tuple[float, ...]) -> ModelEvalResult:
    """Evaluate a trained predictor on its held-out split."""
    report = predictor.evaluate(test_set)
    n_classes = len(thresholds) + 1
    pad = lambda ds: [
        int(c) for c in
        (list(ds.class_counts()) + [0] * n_classes)[:n_classes]
    ]
    return ModelEvalResult(
        name=name,
        report=report,
        train_counts=pad(train_set),
        test_counts=pad(test_set),
        n_windows=len(dataset),
        predictor=predictor,
    )


def evaluate_bank(
    bank: WindowBank,
    name: str,
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
    test_fraction: float = 0.2,
    train_config: TrainConfig | None = None,
    seed: int = 0,
    trainer: "TrainExecutor | None" = None,
) -> ModelEvalResult:
    """The paper's per-benchmark protocol: 80/20 split, train, evaluate.

    With a ``trainer`` attached, training goes through the
    :class:`~repro.parallel.TrainExecutor` — restarts fan out over its
    worker pool and the trained model lands in (or comes from) its model
    cache — with results bit-identical to the serial loop.
    """
    return evaluate_banks([(name, bank)], thresholds=thresholds,
                          test_fraction=test_fraction,
                          train_config=train_config, seed=seed,
                          trainer=trainer)[0]


def evaluate_banks(
    named_banks: list[tuple[str, WindowBank]],
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
    test_fraction: float = 0.2,
    train_config: TrainConfig | None = None,
    seed: int = 0,
    trainer: "TrainExecutor | None" = None,
) -> list[ModelEvalResult]:
    """:func:`evaluate_bank` over a grid of banks, trained as one batch.

    With a ``trainer``, all banks' models are submitted together, so the
    worker pool sees every restart of every cell at once instead of
    draining one training before starting the next.
    """
    prepared = []
    for name, bank in named_banks:
        dataset = bank_to_dataset(bank, thresholds, source=name)
        train_set, test_set = train_test_split(dataset, test_fraction,
                                               seed=seed)
        prepared.append((name, dataset, train_set, test_set))
    config = train_config or TrainConfig(seed=seed)
    if trainer is not None:
        from repro.parallel import TrainJob

        predictors = trainer.train_predictors([
            TrainJob(train_set, thresholds=thresholds, config=config,
                     seed=seed)
            for _, _, train_set, _ in prepared
        ])
        missing = [prepared[i][0] for i, p in enumerate(predictors)
                   if p is None]
        if missing:
            raise RuntimeError(f"training quarantined for bank(s) {missing}")
    else:
        predictors = [
            InterferencePredictor.train(train_set, thresholds=thresholds,
                                        config=config, seed=seed)
            for _, _, train_set, _ in prepared
        ]
    return [
        _bank_result(name, predictor, dataset, train_set, test_set,
                     thresholds)
        for (name, dataset, train_set, test_set), predictor
        in zip(prepared, predictors)
    ]


#: Default noise mix: one task per access family (bulk write, bulk read,
#: small-write metadata), the contention axes Table I shows matter.
DEFAULT_NOISE_TASKS: tuple[str, ...] = (
    "ior-easy-write", "ior-easy-read", "mdt-hard-write",
)


def collect_io500_bank(
    config: ExperimentConfig | None = None,
    tasks: tuple[str, ...] = IO500_TASKS,
    target_ranks: int = 4,
    target_scale: float = 0.4,
    max_level: int = 3,
    noise_tasks: tuple[str, ...] = DEFAULT_NOISE_TASKS,
    noise_ranks: int = 3,
    noise_scale: float = 0.25,
    include_light: bool = True,
    n_jobs: int = 1,
    cache=None,
    executor=None,
    store=None,
) -> WindowBank:
    """Windows from IO500 targets under the standard noise sweep.

    ``include_light`` appends one low-intensity scenario per noise task
    (single instance, fewer ranks), populating the *moderate* (2-5x)
    severity band that Figure 4's middle bin needs — without it the sweep
    is dominated by quiet (<2x) and saturated (>=5x) windows.
    """
    config = config or ExperimentConfig()
    targets = [make_io500_task(t, ranks=target_ranks, scale=target_scale)
               for t in tasks]
    scenarios = standard_scenarios(max_level=max_level, tasks=noise_tasks,
                                   ranks=noise_ranks, scale=noise_scale)
    if include_light:
        from repro.experiments.runner import InterferenceSpec

        for task in noise_tasks:
            scenarios.append(
                Scenario(
                    f"{task}-light",
                    (InterferenceSpec(task, instances=1, ranks=2,
                                      scale=noise_scale * 0.8),),
                )
            )
            scenarios.append(
                Scenario(
                    f"{task}-medium",
                    (InterferenceSpec(task, instances=2, ranks=2,
                                      scale=noise_scale * 0.8),),
                )
            )
    return collect_windows(targets, scenarios, config,
                           n_jobs=n_jobs, cache=cache, executor=executor,
                           store=store)


def collect_dlio_bank(
    config: ExperimentConfig | None = None,
    max_level: int = 3,
    noise_tasks: tuple[str, ...] = DEFAULT_NOISE_TASKS,
    noise_ranks: int = 3,
    noise_scale: float = 0.25,
    epochs: int = 2,
    steps_per_epoch: int = 12,
    compute_time: float = 0.2,
    sample_bytes: int = 16 * 1024 * 1024,
    batch_read_bytes: int = 2 * 1024 * 1024,
    n_jobs: int = 1,
    cache=None,
    executor=None,
    store=None,
) -> WindowBank:
    """Windows from the two DLIO profiles (Unet3d, BERT).

    Defaults emphasise DLIO's character versus IO500: large per-step
    sample reads separated by dominant compute phases, which is what
    makes the paper's DLIO dataset mostly negative.
    """
    config = config or ExperimentConfig()
    targets = [
        DLIOWorkload(DLIOConfig(model="unet3d", ranks=4, epochs=epochs,
                                steps_per_epoch=steps_per_epoch,
                                compute_time=compute_time,
                                sample_bytes=sample_bytes)),
        DLIOWorkload(DLIOConfig(model="bert", ranks=4, epochs=epochs,
                                steps_per_epoch=steps_per_epoch,
                                compute_time=compute_time,
                                batch_read_bytes=batch_read_bytes)),
    ]
    scenarios = standard_scenarios(max_level=max_level, tasks=noise_tasks,
                                   ranks=noise_ranks, scale=noise_scale)
    return collect_windows(targets, scenarios, config,
                           n_jobs=n_jobs, cache=cache, executor=executor,
                           store=store)


def run_fig3_io500(config: ExperimentConfig | None = None,
                   bank: WindowBank | None = None,
                   trainer: "TrainExecutor | None" = None,
                   **bank_kwargs) -> ModelEvalResult:
    """Figure 3(a): binary classification on IO500 windows."""
    bank = bank or collect_io500_bank(config, **bank_kwargs)
    return evaluate_bank(bank, "fig3a-io500", BINARY_THRESHOLDS,
                         trainer=trainer)


def run_fig3_dlio(config: ExperimentConfig | None = None,
                  bank: WindowBank | None = None,
                  trainer: "TrainExecutor | None" = None,
                  **bank_kwargs) -> ModelEvalResult:
    """Figure 3(b): binary classification on DLIO windows."""
    bank = bank or collect_dlio_bank(config, **bank_kwargs)
    return evaluate_bank(bank, "fig3b-dlio", BINARY_THRESHOLDS,
                         trainer=trainer)
