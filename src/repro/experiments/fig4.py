"""Figure 4: 3-class (mild / moderate / severe) prediction on IO500.

The paper adjusts only the output layer to three bins with thresholds at
2x and 5x (following Perseus' mild/moderate/severe taxonomy) and retrains
on the IO500 data. Reuses the IO500 window bank from Figure 3 when given.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.labeling import MULTICLASS_THRESHOLDS
from repro.experiments.datagen import WindowBank
from repro.experiments.fig3 import ModelEvalResult, collect_io500_bank, evaluate_bank
from repro.experiments.runner import ExperimentConfig

if TYPE_CHECKING:
    from repro.parallel import TrainExecutor

__all__ = ["run_fig4"]


def run_fig4(config: ExperimentConfig | None = None,
             bank: WindowBank | None = None,
             trainer: "TrainExecutor | None" = None,
             **bank_kwargs) -> ModelEvalResult:
    """3-class classification on the IO500 window bank.

    ``bank_kwargs`` pass through to :func:`collect_io500_bank`, including
    the sweep knobs ``n_jobs``/``cache``/``executor`` — with the same
    cache directory as Figure 3, the 3-class dataset re-bins Figure 3's
    cached simulation sweep instead of re-running it.  ``trainer``
    likewise shares the model cache: the 3-class thresholds key a
    distinct model, so Figures 3 and 4 coexist in one cache.
    """
    bank = bank or collect_io500_bank(config, **bank_kwargs)
    return evaluate_bank(bank, "fig4-io500-3class", MULTICLASS_THRESHOLDS,
                         trainer=trainer)
