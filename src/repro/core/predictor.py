"""The deployable interference predictor.

Bundles everything the paper's training server deploys after training:
the feature normaliser, the kernel-based model and the severity
thresholds. At runtime it consumes the same per-server vectors the
monitors emit and predicts each window's interference severity class.

Three deployment-side capabilities live here alongside training:

* **Persistence** — :meth:`InterferencePredictor.save` /
  :meth:`InterferencePredictor.load` round-trip the trained parameters,
  the normaliser statistics, the thresholds and the training history
  through a single format-versioned ``.npz`` file
  (``allow_pickle=False``), which is what the content-addressed model
  cache (:mod:`repro.parallel.modelcache`) and the ``repro train
  --model-out`` / ``repro predict --model`` CLI build on.
* **Restart decomposition** — :meth:`InterferencePredictor.train_restart`
  is one independent initialisation of the restart loop; the serial
  :meth:`train` iterates it, and :class:`repro.parallel.TrainExecutor`
  fans the same calls over worker processes with bit-identical results.
* **Fused inference** — :meth:`InterferencePredictor.deploy` folds the
  normaliser's z-score affine into the first kernel layer and returns a
  :class:`DeployedPredictor` whose forward pass runs entirely in
  preallocated buffers: per-window online scoring does no normalisation
  pass and no array allocation.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import Dataset, Normalizer
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.metrics import ClassificationReport, evaluate
from repro.core.nn.kernelnet import KernelInterferenceNet
from repro.core.nn.layers import Dense, Dropout, ReLU, Sequential
from repro.core.nn.losses import softmax_probs
from repro.core.nn.train import (
    TrainConfig,
    TrainHistory,
    restart_seed,
    train_classifier,
)
from repro.monitor.aggregator import MonitoredRun, assemble_vectors

__all__ = ["InterferencePredictor", "DeployedPredictor", "PREDICTOR_FORMAT"]

#: Bumped whenever the saved ``.npz`` layout changes incompatibly.
PREDICTOR_FORMAT = 1

_PREDICTOR_KIND = "repro-interference-predictor"


@dataclass
class InterferencePredictor:
    """Normaliser + kernel network + severity thresholds."""

    model: KernelInterferenceNet
    normalizer: Normalizer
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS
    history: TrainHistory | None = field(default=None, repr=False)

    @property
    def n_classes(self) -> int:
        return self.model.n_classes

    @property
    def param_dtype(self) -> np.dtype:
        """Inference dtype — follows the trained parameters, so a
        float32-trained model scores windows in float32."""
        return self.model.param_dtype

    @staticmethod
    def check_train_inputs(train_set: Dataset, thresholds: tuple[float, ...],
                           restarts: int) -> int:
        """Validate a training request; returns the class count.

        Shared between the serial :meth:`train` loop and the parallel
        :class:`repro.parallel.TrainExecutor`, so both reject exactly the
        same inputs."""
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        n_classes = len(thresholds) + 1
        if train_set.n_classes > n_classes:
            raise ValueError(
                f"dataset has {train_set.n_classes} classes but thresholds "
                f"define {n_classes}"
            )
        return n_classes

    @classmethod
    def train_restart(
        cls,
        X: np.ndarray,
        y: np.ndarray,
        n_servers: int,
        n_features: int,
        n_classes: int,
        config: TrainConfig,
        kernel_hidden: tuple[int, ...] = (64, 32),
        head_hidden: tuple[int, ...] = (32,),
        seed: int = 0,
        restart: int = 0,
        normalizer: Normalizer | None = None,
    ) -> tuple[float, KernelInterferenceNet, TrainHistory]:
        """One independent initialisation of the restart loop.

        ``X`` is the raw training tensor with a fitted ``normalizer`` to
        apply per batch (or an already-normalised tensor and ``None`` —
        the two are bit-identical; the lazy form never densifies a
        memmap-backed ``X``).  Returns the restart's ``(validation
        score, trained model, history)``; the caller keeps the restart
        with the lowest score, ties broken by the lowest restart index.
        Every stochastic choice derives from ``(seed, restart)`` alone,
        so running restarts serially, out of order, or in worker
        processes yields bit-identical models.
        """
        model = KernelInterferenceNet(
            n_servers=n_servers,
            n_features=n_features,
            n_classes=n_classes,
            kernel_hidden=kernel_hidden,
            head_hidden=head_hidden,
            seed=restart_seed(seed, restart),
        )
        history = train_classifier(model, X, y, config,
                                   normalizer=normalizer)
        score = min(history.val_loss) if history.val_loss else float("inf")
        return score, model, history

    @classmethod
    def train(
        cls,
        train_set: Dataset,
        thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
        config: TrainConfig | None = None,
        kernel_hidden: tuple[int, ...] = (64, 32),
        head_hidden: tuple[int, ...] = (32,),
        seed: int = 0,
        restarts: int = 3,
    ) -> "InterferencePredictor":
        """Train a predictor on a labelled dataset.

        The kernel architecture squeezes every server through a single
        scalar, which makes optimisation sensitive to an unlucky
        initialisation; training therefore runs ``restarts`` independent
        initialisations and keeps the model with the best validation
        loss (deterministic given ``seed``).
        """
        n_classes = cls.check_train_inputs(train_set, thresholds, restarts)
        # Fit streams over X; the transform is applied lazily per batch
        # inside the training loop.  Neither densifies train_set.X, so a
        # memmap-backed dataset trains with peak RSS bounded by batch
        # and validation-slice size — bit-identical to the eager path.
        normalizer = Normalizer().fit(train_set.X)
        config = config or TrainConfig(seed=seed)
        best: tuple[float, KernelInterferenceNet, TrainHistory] | None = None
        for restart in range(restarts):
            score, model, history = cls.train_restart(
                train_set.X, train_set.y, train_set.n_servers,
                train_set.n_features, n_classes, config,
                kernel_hidden=kernel_hidden, head_hidden=head_hidden,
                seed=seed, restart=restart, normalizer=normalizer,
            )
            if best is None or score < best[0]:
                best = (score, model, history)
        assert best is not None
        return cls(model=best[1], normalizer=normalizer, thresholds=thresholds,
                   history=best[2])

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the predictor to a single ``.npz`` file.

        The file is self-describing (architecture, thresholds, history
        and a format version travel in an embedded JSON document) and
        contains no pickled objects, so it can be loaded with
        ``allow_pickle=False`` from untrusted storage.  Parameter arrays
        round-trip bit-exactly: a loaded predictor's outputs are
        identical to the saved one's.
        """
        path = pathlib.Path(path)
        model = self.model
        params = model.params()
        meta = {
            "kind": _PREDICTOR_KIND,
            "format": PREDICTOR_FORMAT,
            "arch": {
                "n_servers": model.n_servers,
                "n_features": model.n_features,
                "n_classes": model.n_classes,
                "kernel_hidden": list(model.kernel_hidden),
                "head_hidden": list(model.head_hidden),
                "dropout": model.dropout,
            },
            "thresholds": list(self.thresholds),
            "dtype": str(np.dtype(model.param_dtype)),
            "n_params": len(params),
            "history": None if self.history is None else {
                "train_loss": [float(v) for v in self.history.train_loss],
                "val_loss": [float(v) for v in self.history.val_loss],
                "best_epoch": self.history.best_epoch,
                "stopped_early": self.history.stopped_early,
            },
        }
        if self.normalizer.mean is None or self.normalizer.std is None:
            raise ValueError("cannot save a predictor with an unfitted "
                             "normalizer")
        arrays: dict[str, np.ndarray] = {
            "meta": np.array(json.dumps(meta)),
            "norm_mean": np.asarray(self.normalizer.mean),
            "norm_std": np.asarray(self.normalizer.std),
        }
        for i, p in enumerate(params):
            arrays[f"param_{i}"] = p.value
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fp:
            np.savez_compressed(fp, **arrays)
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "InterferencePredictor":
        """Read a predictor previously written by :meth:`save`.

        Raises ``ValueError`` for anything that is not a well-formed
        saved predictor (truncated archive, foreign npz, wrong format
        version, mismatched shapes) and ``OSError`` for unreadable paths.
        """
        import zipfile

        try:
            data = np.load(pathlib.Path(path), allow_pickle=False)
        except zipfile.BadZipFile as exc:
            raise ValueError(f"{path}: not a valid npz archive "
                             f"({exc})") from exc
        with data:
            if "meta" not in data:
                raise ValueError(f"{path}: not a saved predictor (no meta)")
            meta = json.loads(str(data["meta"][()]))
            if meta.get("kind") != _PREDICTOR_KIND:
                raise ValueError(
                    f"{path}: unexpected kind {meta.get('kind')!r}")
            if meta.get("format") != PREDICTOR_FORMAT:
                raise ValueError(
                    f"{path}: format {meta.get('format')!r} not supported "
                    f"by this version (expects {PREDICTOR_FORMAT})")
            arch = meta["arch"]
            model = KernelInterferenceNet(
                n_servers=int(arch["n_servers"]),
                n_features=int(arch["n_features"]),
                n_classes=int(arch["n_classes"]),
                kernel_hidden=tuple(int(w) for w in arch["kernel_hidden"]),
                head_hidden=tuple(int(w) for w in arch["head_hidden"]),
                dropout=float(arch["dropout"]),
                seed=0,
            )
            params = model.params()
            if len(params) != int(meta["n_params"]):
                raise ValueError(
                    f"{path}: has {meta['n_params']} parameter tensors, "
                    f"architecture defines {len(params)}")
            for i, p in enumerate(params):
                value = data[f"param_{i}"]
                if value.shape != p.value.shape:
                    raise ValueError(
                        f"{path}: param_{i} has shape {value.shape}, "
                        f"architecture expects {p.value.shape}")
                p.value = np.array(value)
                p.grad = np.zeros_like(p.value)
            normalizer = Normalizer(mean=np.array(data["norm_mean"]),
                                    std=np.array(data["norm_std"]))
            history = (TrainHistory(**meta["history"])
                       if meta.get("history") else None)
            thresholds = tuple(float(t) for t in meta["thresholds"])
        return cls(model=model, normalizer=normalizer, thresholds=thresholds,
                   history=history)

    # -- inference -----------------------------------------------------------

    def _normalized(self, X: np.ndarray) -> np.ndarray:
        """Z-scored input in the model's parameter dtype."""
        dtype = self.model.param_dtype
        Xn = self.normalizer.transform(np.asarray(X, dtype=dtype))
        return Xn if Xn.dtype == dtype else Xn.astype(dtype)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Severity classes for raw (unnormalised) per-server vectors."""
        return self.model.predict(self._normalized(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self.model.predict_proba(self._normalized(X))

    def predict_run(self, run: MonitoredRun, window_size: float = 1.0,
                    sample_interval: float = 0.25) -> dict[int, int]:
        """Per-window severity predictions for a monitored run."""
        X, windows = assemble_vectors(run, window_size, sample_interval)
        preds = self.predict(X)
        return dict(zip(windows, preds.tolist()))

    def evaluate(self, test_set: Dataset) -> ClassificationReport:
        """Confusion matrix + P/R/F1 on a held-out set."""
        preds = self.predict(test_set.X)
        return evaluate(test_set.y, preds, n_classes=self.n_classes)

    def deploy(self) -> "DeployedPredictor":
        """An allocation-free fused-inference view of this predictor.

        See :class:`DeployedPredictor`; the underlying parameters are
        copied, so later training of this predictor does not corrupt the
        deployed scorer (and vice versa).
        """
        return DeployedPredictor(self)


def _affine_stack(net: Sequential) -> list[list]:
    """Flatten a Dense/ReLU/Dropout Sequential into ``[W, b, relu]`` rows.

    Dropout is identity at inference time and is dropped; a trailing
    ReLU flag marks rows whose output is rectified in place.
    """
    rows: list[list] = []
    for layer in net.layers:
        if isinstance(layer, Dense):
            rows.append([layer.W.value.copy(), layer.b.value.copy(), False])
        elif isinstance(layer, ReLU):
            if not rows:
                raise ValueError("ReLU before any Dense layer")
            rows[-1][2] = True
        elif isinstance(layer, Dropout):
            continue
        else:
            raise ValueError(
                f"cannot deploy layer type {type(layer).__name__}")
    return rows


class DeployedPredictor:
    """Fused, allocation-free inference for a trained predictor.

    Two transformations make the per-window hot path cheap:

    * **Normaliser fusion** — the z-score ``(x - mean) / std`` is an
      affine map, and so is the first kernel layer ``x' @ W + b``.
      Composing them gives ``x @ (W / std[:, None]) + (b - (mean / std)
      @ W)``: one matmul replaces the normalisation pass entirely, with
      results equal to the unfused path up to float rounding (the
      reassociation of the same affine arithmetic).
    * **Buffer reuse** — every layer's output is written into a
      preallocated scratch buffer via ``np.matmul(..., out=...)``; the
      softmax runs in preallocated scratch as well.  Buffers are keyed
      to the batch size, so steady-state online scoring (batch of one
      window per prediction) allocates nothing.

    Consequently the arrays returned by :meth:`predict_proba` and
    :meth:`scores` are views into internal buffers, **valid only until
    the next call**; copy them to keep them.  :meth:`predict` returns a
    fresh (argmax) array and is always safe to hold.
    """

    def __init__(self, predictor: InterferencePredictor) -> None:
        norm = predictor.normalizer
        if norm.mean is None or norm.std is None:
            raise ValueError("cannot deploy a predictor with an unfitted "
                             "normalizer")
        model = predictor.model
        self.n_servers = model.n_servers
        self.n_features = model.n_features
        self.n_classes = model.n_classes
        self.thresholds = predictor.thresholds
        self._dtype = np.dtype(model.param_dtype)

        kernel = _affine_stack(model.kernel)
        head = _affine_stack(model.head)
        # Fold the z-score affine into the first kernel layer.
        W0, b0, relu0 = kernel[0]
        inv_std = 1.0 / np.asarray(norm.std)
        Wf = (W0 * inv_std[:, None]).astype(self._dtype, copy=False)
        bf = (b0 - (np.asarray(norm.mean) * inv_std) @ W0).astype(
            self._dtype, copy=False)
        kernel[0] = [Wf, bf, relu0]
        self._kernel = [(W.astype(self._dtype, copy=False),
                         b.astype(self._dtype, copy=False), relu)
                        for W, b, relu in kernel]
        self._head = [(W.astype(self._dtype, copy=False),
                       b.astype(self._dtype, copy=False), relu)
                      for W, b, relu in head]
        self._buf_n: int | None = None
        self._kernel_bufs: list[np.ndarray] = []
        self._head_bufs: list[np.ndarray] = []
        self._max_buf: np.ndarray | None = None
        self._sum_buf: np.ndarray | None = None
        # predict_proba_rows keeps its own buffers so mixed batch/row
        # scoring through one deployed instance never thrashes the
        # batch-size-keyed set above.
        self._row_buf_n: int | None = None
        self._row_kernel_bufs: list[np.ndarray] = []
        self._head1_bufs: list[np.ndarray] | None = None
        self._max1_buf: np.ndarray | None = None
        self._sum1_buf: np.ndarray | None = None

    def _ensure_buffers(self, n: int) -> None:
        if self._buf_n == n:
            return
        self._kernel_bufs = [
            np.empty((n, self.n_servers, W.shape[1]), dtype=self._dtype)
            for W, _, _ in self._kernel
        ]
        self._head_bufs = [
            np.empty((n, W.shape[1]), dtype=self._dtype)
            for W, _, _ in self._head
        ]
        self._max_buf = np.empty((n, 1), dtype=self._dtype)
        self._sum_buf = np.empty((n, 1), dtype=self._dtype)
        self._buf_n = n

    @staticmethod
    def _forward(x: np.ndarray, stack, bufs) -> np.ndarray:
        for (W, b, relu), out in zip(stack, bufs):
            np.matmul(x, W, out=out)
            out += b
            if relu:
                np.maximum(out, 0.0, out=out)
            x = out
        return x

    def logits(self, X: np.ndarray) -> np.ndarray:
        """Head logits for a raw ``(n, servers, features)`` batch.

        The returned array is an internal buffer, valid until the next
        call.
        """
        X = np.asarray(X, dtype=self._dtype)
        if X.ndim != 3 or X.shape[1] != self.n_servers \
                or X.shape[2] != self.n_features:
            raise ValueError(
                f"expected (n, {self.n_servers}, {self.n_features}), "
                f"got {X.shape}"
            )
        self._ensure_buffers(len(X))
        per_server = self._forward(X, self._kernel, self._kernel_bufs)
        return self._forward(per_server[..., 0], self._head, self._head_bufs)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities; returned array is an internal buffer."""
        logits = self.logits(X)
        np.amax(logits, axis=-1, keepdims=True, out=self._max_buf)
        logits -= self._max_buf
        np.exp(logits, out=logits)
        np.sum(logits, axis=-1, keepdims=True, out=self._sum_buf)
        logits /= self._sum_buf
        return logits

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Severity classes (fresh array, safe to keep)."""
        # argmax of the probabilities equals argmax of the logits, but
        # running the softmax keeps the numerics identical to
        # ``predict_proba(...).argmax`` for near-tied windows.
        return self.predict_proba(X).argmax(axis=-1)

    def predict_proba_rows(self, X: np.ndarray) -> np.ndarray:
        """Batch scoring whose every row is bit-identical to a
        batch-of-one :meth:`predict_proba` call.

        The prediction service micro-batches windows from many tenants
        into one forward pass, but must return each tenant the exact
        bits a standalone per-window scorer would have produced — the
        batch composition (who else happened to land in this tick)
        cannot be allowed to perturb anyone's prediction.  A plain
        batched :meth:`predict_proba` breaks that: the head's 2-D
        matmuls go through one BLAS gemm whose summation order depends
        on the row count.  Two facts restore row-invariance:

        * the **kernel stack is 3-D** — numpy evaluates
          ``(n, s, f) @ (f, h)`` slice by slice, so each window's
          per-server pass is bitwise independent of ``n``.  This stage
          carries essentially all the FLOPs and stays one fused matmul
          call per layer for the whole batch;
        * the **head is tiny** ``(1, servers)``-shaped work — running it
          (and the softmax) per row at the exact n=1 shapes of the
          standalone path reproduces the standalone bits at negligible
          cost.

        Returns a fresh ``(n, n_classes)`` array (safe to keep).
        """
        X = np.asarray(X, dtype=self._dtype)
        if X.ndim != 3 or X.shape[1] != self.n_servers \
                or X.shape[2] != self.n_features:
            raise ValueError(
                f"expected (n, {self.n_servers}, {self.n_features}), "
                f"got {X.shape}"
            )
        n = len(X)
        out = np.empty((n, self.n_classes), dtype=self._dtype)
        if n == 0:
            return out
        if self._row_buf_n != n:
            self._row_kernel_bufs = [
                np.empty((n, self.n_servers, W.shape[1]), dtype=self._dtype)
                for W, _, _ in self._kernel
            ]
            self._row_buf_n = n
        if self._head1_bufs is None:
            self._head1_bufs = [
                np.empty((1, W.shape[1]), dtype=self._dtype)
                for W, _, _ in self._head
            ]
            self._max1_buf = np.empty((1, 1), dtype=self._dtype)
            self._sum1_buf = np.empty((1, 1), dtype=self._dtype)
        per_server = self._forward(X, self._kernel, self._row_kernel_bufs)
        for i in range(n):
            logits = self._forward(per_server[i:i + 1, ..., 0], self._head,
                                   self._head1_bufs)
            np.amax(logits, axis=-1, keepdims=True, out=self._max1_buf)
            logits -= self._max1_buf
            np.exp(logits, out=logits)
            np.sum(logits, axis=-1, keepdims=True, out=self._sum1_buf)
            logits /= self._sum1_buf
            out[i] = logits[0]
        return out

    def scores(self, X: np.ndarray) -> np.ndarray:
        """Unfused reference probabilities (allocating; for verification)."""
        return softmax_probs(np.array(self.logits(X)))
