"""The deployable interference predictor.

Bundles everything the paper's training server deploys after training:
the feature normaliser, the kernel-based model and the severity
thresholds. At runtime it consumes the same per-server vectors the
monitors emit and predicts each window's interference severity class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import Dataset, Normalizer
from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.metrics import ClassificationReport, evaluate
from repro.core.nn.kernelnet import KernelInterferenceNet
from repro.core.nn.train import TrainConfig, TrainHistory, train_classifier
from repro.monitor.aggregator import MonitoredRun, assemble_vectors

__all__ = ["InterferencePredictor"]


@dataclass
class InterferencePredictor:
    """Normaliser + kernel network + severity thresholds."""

    model: KernelInterferenceNet
    normalizer: Normalizer
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS
    history: TrainHistory | None = field(default=None, repr=False)

    @property
    def n_classes(self) -> int:
        return self.model.n_classes

    @classmethod
    def train(
        cls,
        train_set: Dataset,
        thresholds: tuple[float, ...] = BINARY_THRESHOLDS,
        config: TrainConfig | None = None,
        kernel_hidden: tuple[int, ...] = (64, 32),
        head_hidden: tuple[int, ...] = (32,),
        seed: int = 0,
        restarts: int = 3,
    ) -> "InterferencePredictor":
        """Train a predictor on a labelled dataset.

        The kernel architecture squeezes every server through a single
        scalar, which makes optimisation sensitive to an unlucky
        initialisation; training therefore runs ``restarts`` independent
        initialisations and keeps the model with the best validation
        loss (deterministic given ``seed``).
        """
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        n_classes = len(thresholds) + 1
        if train_set.n_classes > n_classes:
            raise ValueError(
                f"dataset has {train_set.n_classes} classes but thresholds "
                f"define {n_classes}"
            )
        normalizer = Normalizer().fit(train_set.X)
        X = normalizer.transform(train_set.X)
        config = config or TrainConfig(seed=seed)
        best: tuple[float, KernelInterferenceNet, TrainHistory] | None = None
        for restart in range(restarts):
            model = KernelInterferenceNet(
                n_servers=train_set.n_servers,
                n_features=train_set.n_features,
                n_classes=n_classes,
                kernel_hidden=kernel_hidden,
                head_hidden=head_hidden,
                seed=seed + 7919 * restart,
            )
            history = train_classifier(model, X, train_set.y, config)
            score = min(history.val_loss) if history.val_loss else float("inf")
            if best is None or score < best[0]:
                best = (score, model, history)
        assert best is not None
        return cls(model=best[1], normalizer=normalizer, thresholds=thresholds,
                   history=best[2])

    # -- inference -----------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Severity classes for raw (unnormalised) per-server vectors."""
        return self.model.predict(self.normalizer.transform(np.asarray(X, float)))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self.model.predict_proba(
            self.normalizer.transform(np.asarray(X, float))
        )

    def predict_run(self, run: MonitoredRun, window_size: float = 1.0,
                    sample_interval: float = 0.25) -> dict[int, int]:
        """Per-window severity predictions for a monitored run."""
        X, windows = assemble_vectors(run, window_size, sample_interval)
        preds = self.predict(X)
        return dict(zip(windows, preds.tolist()))

    def evaluate(self, test_set: Dataset) -> ClassificationReport:
        """Confusion matrix + P/R/F1 on a held-out set."""
        preds = self.predict(test_set.X)
        return evaluate(test_set.y, preds, n_classes=self.n_classes)
