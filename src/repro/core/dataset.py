"""Dataset container, splitting and normalisation.

A :class:`Dataset` holds the per-server vectors of many windows
(``X: (n, servers, features)``) with their severity labels. The paper
randomly reserves 20% of windows for testing (§III-D);
:func:`train_test_split` reproduces that. :class:`Normalizer` z-scores
each feature using training statistics only, a requirement for the NN to
train on metrics whose scales span bytes to seconds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import derive_rng
from repro.monitor.schema import VECTOR_FEATURES

__all__ = ["Dataset", "Normalizer", "split_indices", "train_test_split"]

#: Bounds on the streaming paths' working sets (digest hashing and
#: normalizer fitting).  They bound peak memory only — results are
#: bitwise-independent of these values.
_DIGEST_CHUNK_BYTES = 16 << 20
_STREAM_CHUNK_ROWS = 65536


@dataclass
class Dataset:
    """Labelled windows: per-server vectors plus severity classes."""

    X: np.ndarray  # (n_windows, n_servers, n_features)
    y: np.ndarray  # (n_windows,), int severity classes
    feature_names: tuple[str, ...] = VECTOR_FEATURES
    source: str = ""

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y, dtype=int)
        if self.X.ndim != 3:
            raise ValueError(f"X must be (windows, servers, features), got {self.X.shape}")
        if len(self.X) != len(self.y):
            raise ValueError(f"X has {len(self.X)} rows but y has {len(self.y)}")
        if self.X.shape[2] != len(self.feature_names):
            raise ValueError(
                f"X has {self.X.shape[2]} features but "
                f"{len(self.feature_names)} names"
            )
        if self.X.size and not np.isfinite(self.X).all():
            raise ValueError(
                "dataset contains non-finite feature values; gaps must be "
                "masked/imputed upstream (see assemble_vectors gap_policy)"
            )
        if len(self.y) and self.y.min() < 0:
            raise ValueError("labels must be non-negative class indices")

    def __len__(self) -> int:
        return len(self.y)

    @property
    def n_servers(self) -> int:
        return self.X.shape[1]

    @property
    def n_features(self) -> int:
        return self.X.shape[2]

    @property
    def n_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self.y) else 0

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.y, minlength=self.n_classes)

    def content_digest(self) -> str:
        """Content hash of the labelled data itself.

        Primary input to the model-cache key
        (:mod:`repro.parallel.cachekey`): two datasets with equal bytes
        hash equally regardless of how they were collected, while any
        change to a single cell, label or feature name invalidates cached
        models.  ``source`` is deliberately excluded — it is a
        provenance annotation, not data.
        """
        h = hashlib.blake2b(digest_size=20)
        h.update(repr((self.X.shape, str(self.X.dtype), str(self.y.dtype),
                       self.feature_names)).encode())
        # Hash X in row slices: a contiguous row slice's bytes are the
        # same bytes `ascontiguousarray(X).tobytes()` would contribute,
        # so the digest is unchanged — but a memmap-backed X (the
        # out-of-core DatasetStore path) streams through a bounded
        # buffer instead of densifying the whole array.
        step = max(1, _DIGEST_CHUNK_BYTES //
                   max(1, self.X[:1].nbytes)) if len(self.X) else 1
        for start in range(0, len(self.X), step):
            h.update(np.ascontiguousarray(
                self.X[start:start + step]).tobytes())
        h.update(np.ascontiguousarray(self.y).tobytes())
        return h.hexdigest()

    def subset(self, idx: np.ndarray, source_suffix: str = "") -> "Dataset":
        return Dataset(self.X[idx], self.y[idx], self.feature_names,
                       source=self.source + source_suffix)

    @staticmethod
    def concatenate(parts: list["Dataset"]) -> "Dataset":
        """Stack datasets with identical server/feature shapes."""
        if not parts:
            raise ValueError("nothing to concatenate")
        shapes = {(p.n_servers, p.n_features) for p in parts}
        if len(shapes) != 1:
            raise ValueError(f"incompatible dataset shapes: {shapes}")
        return Dataset(
            np.concatenate([p.X for p in parts]),
            np.concatenate([p.y for p in parts]),
            parts[0].feature_names,
            # Append order, duplicates kept: two parts from distinct
            # collections can legitimately share a name, and sorting
            # would decouple the tag order from the row order.
            source="+".join(p.source for p in parts if p.source),
        )


def split_indices(
    n: int, test_fraction: float = 0.2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """(train_idx, test_idx) for a random split — shared by every consumer
    that must align auxiliary arrays (e.g. raw levels) with the split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    rng = derive_rng(seed, "train-test-split")
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    return perm[n_test:], perm[:n_test]


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, seed: int = 0
) -> tuple[Dataset, Dataset]:
    """Random window-level split (the paper's 80/20)."""
    train_idx, test_idx = split_indices(len(dataset), test_fraction, seed)
    return dataset.subset(train_idx, ":train"), dataset.subset(test_idx, ":test")


def _flat_rows(chunk: np.ndarray) -> np.ndarray:
    """A chunk as (rows, features) — 3-D window chunks flatten cells."""
    c = np.asarray(chunk)
    return c.reshape(-1, c.shape[-1])


@dataclass
class Normalizer:
    """Per-feature z-scoring with train-set statistics.

    Statistics are computed over all (window, server) cells so the kernel
    network sees every server's vector on the same scale.

    Fitting streams over row slices (two passes: sum, then squared
    deviations), so a memmap-backed ``X`` is never densified — and the
    accumulation is **bitwise-identical** to the whole-array
    ``flat.mean(axis=0)`` / ``flat.std(axis=0)``: each step re-reduces
    the running total together with the next slice's rows, reproducing
    numpy's pairwise summation exactly (property-tested across chunk
    sizes and dtypes in ``tests/data``).
    """

    mean: np.ndarray | None = None
    std: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "Normalizer":
        flat = X.reshape(-1, X.shape[-1])
        if not len(flat):
            # Historical degenerate-input semantics (NaN statistics and
            # numpy's empty-slice warnings) are part of the contract.
            self.mean = flat.mean(axis=0)
            std = flat.std(axis=0)
            std[std < 1e-12] = 1.0
            self.std = std
            return self
        return self.fit_chunks(
            lambda: (flat[i:i + _STREAM_CHUNK_ROWS]
                     for i in range(0, len(flat), _STREAM_CHUNK_ROWS)))

    def fit_chunks(self, chunks) -> "Normalizer":
        """Fit from a re-iterable stream of row chunks.

        ``chunks`` is either a sequence of arrays or a zero-argument
        callable returning a fresh iterator (the stream is consumed
        twice).  Chunks may be 2-D ``(rows, features)`` or 3-D window
        blocks ``(windows, servers, features)``; all must share the
        feature width.  The fitted statistics equal ``fit`` over the
        concatenated rows to the last bit, whatever the chunking.
        """
        import collections.abc

        if callable(chunks):
            get = chunks
        elif isinstance(chunks, collections.abc.Sequence):
            get = lambda: chunks  # noqa: E731
        else:
            raise TypeError(
                "chunks must be re-iterable: pass a sequence of arrays or "
                "a zero-arg callable returning a fresh iterator")
        # Pass 1: running sum.  Seeding from the first slice (not a zero
        # identity) and re-reducing [acc; slice] each step keeps the
        # float operation tree identical to one whole-array reduce —
        # including signed zeros.
        n = 0
        acc = None
        for chunk in get():
            c = _flat_rows(chunk)
            if not len(c):
                continue
            if acc is None:
                acc = np.add.reduce(c, axis=0)
            else:
                acc = np.add.reduce(np.concatenate([acc[None, :], c]),
                                    axis=0)
            n += len(c)
        if acc is None:
            raise ValueError("cannot fit a Normalizer on an empty stream")
        mean = acc / n
        # Pass 2: squared deviations from the mean, same accumulation.
        acc2 = None
        m = 0
        for chunk in get():
            c = _flat_rows(chunk)
            if not len(c):
                continue
            d = c - mean
            d = d * d
            if acc2 is None:
                acc2 = np.add.reduce(d, axis=0)
            else:
                acc2 = np.add.reduce(np.concatenate([acc2[None, :], d]),
                                     axis=0)
            m += len(c)
        if m != n:
            raise ValueError(
                f"chunk stream changed between passes ({n} then {m} rows)")
        std = np.sqrt(acc2 / n)
        # Constant features carry no signal; avoid dividing by zero.
        std[std < 1e-12] = 1.0
        self.mean = mean
        self.std = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("Normalizer used before fit()")
        return (X - self.mean) / self.std

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
