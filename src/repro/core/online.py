"""Online prediction during a live run (the paper's deployment mode).

After offline training, the paper's model runs on the training server and
"receives time window metrics from both the server-side and client-side
monitors in the same per-server vector format at runtime" (§III-C). This
module implements that loop inside the simulator: a
:class:`StreamingPredictor` is attached to a live cluster and, every time
a window closes, assembles that window's per-server vector from the
records and samples accumulated *so far* and emits a severity prediction
— while the target application is still running.

The streaming vector assembly is incremental (cursor over the trace and
sample streams) and produces bit-identical vectors to the offline
:func:`repro.monitor.aggregator.assemble_vectors`, which the integration
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.common.records import IORecord, ServerId
from repro.monitor.client_monitor import ClientWindowAggregator
from repro.monitor.schema import CLIENT_FEATURES, SERVER_FEATURES
from repro.monitor.server_monitor import ServerMonitor
from repro.core.predictor import InterferencePredictor
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.sim.cluster import Cluster

logger = get_logger("core.online")

__all__ = ["WindowPrediction", "StreamingPredictor"]


@dataclass(frozen=True)
class WindowPrediction:
    """One runtime prediction: emitted as soon as the window closed.

    ``completeness`` is the fraction of expected server samples that had
    arrived when the prediction was made; ``stale`` marks a fallback
    emission — the window's telemetry was too gappy, so the last good
    prediction was repeated instead of trusting a half-blind vector.
    """

    window: int
    severity: int
    probabilities: tuple[float, ...]
    emitted_at: float  #: simulated time the prediction was produced
    completeness: float = 1.0
    stale: bool = False


@dataclass
class StreamingPredictor:
    """Drives a trained predictor against a live simulated run."""

    predictor: InterferencePredictor
    cluster: Cluster
    monitor: ServerMonitor
    job: str
    window_size: float = 0.5
    #: Called with each WindowPrediction as it is emitted (optional).
    on_prediction: Callable[[WindowPrediction], None] | None = None
    #: Bounded reorder buffer: window ``w`` is predicted at
    #: ``(w + 1 + reorder_windows) * window_size``, giving late /
    #: out-of-order samples that many windows to arrive.
    reorder_windows: int = 0
    #: Minimum fraction of expected server samples a window needs before
    #: its vector is trusted; below it, fall back to the last good
    #: prediction with ``stale=True``.  0 disables the fallback.
    min_completeness: float = 0.0
    #: Score windows through the fused deployment path
    #: (:meth:`InterferencePredictor.deploy`): the normaliser is folded
    #: into the first kernel layer and every forward pass runs in
    #: preallocated buffers, so the per-window hot path does no
    #: normalisation pass and no allocation.  Equal to the unfused path
    #: up to float rounding; disable to score through the predictor
    #: directly.
    fused: bool = True

    predictions: list[WindowPrediction] = field(default_factory=list)
    _record_cursor: int = field(default=0, repr=False)
    _sample_cursor: int = field(default=0, repr=False)
    _window_records: dict[int, list[IORecord]] = field(default_factory=dict,
                                                       repr=False)
    _window_samples: dict[tuple[int, ServerId], list[dict]] = field(
        default_factory=dict, repr=False)
    _started: bool = field(default=False, repr=False)
    _scorer: object = field(default=None, repr=False)
    _last_good: WindowPrediction | None = field(default=None, repr=False)
    _emitted_through: int = field(default=-1, repr=False)

    def start(self) -> None:
        """Arm the per-window prediction loop on the cluster's engine."""
        if self._started:
            raise RuntimeError("streaming predictor already started")
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.reorder_windows < 0:
            raise ValueError("reorder_windows must be >= 0")
        if not 0.0 <= self.min_completeness <= 1.0:
            raise ValueError("min_completeness must be in [0, 1]")
        self._started = True
        self._scorer = (self.predictor.deploy() if self.fused
                        else self.predictor)
        self.cluster.env.process(self._loop())

    # -- incremental ingestion --------------------------------------------------

    def _ingest(self) -> None:
        from repro.common.windows import window_index

        records = self.cluster.collector.records
        while self._record_cursor < len(records):
            rec = records[self._record_cursor]
            self._record_cursor += 1
            if rec.job != self.job:
                continue
            w = window_index(rec.end, self.window_size)
            if w <= self._emitted_through:
                continue
            self._window_records.setdefault(w, []).append(rec)
        samples = self.monitor.samples
        half = self.monitor.sample_interval / 2
        late_counter = REGISTRY.counter("online.late_samples")
        while self._sample_cursor < len(samples):
            t, server, metrics = samples[self._sample_cursor]
            self._sample_cursor += 1
            w = window_index(max(0.0, t - half), self.window_size)
            if w <= self._emitted_through:
                # The sample arrived after its window was already
                # predicted; it can no longer influence the output, so
                # count it and drop it instead of buffering it forever —
                # a long-lived stream (one tenant session of the
                # prediction service) must hold only windows that can
                # still be emitted.
                late_counter.inc()
                continue
            self._window_samples.setdefault((w, server), []).append(metrics)

    def _evict(self, window: int) -> None:
        """Release the buffers of an emitted window.

        Emitted windows are never revisited (late arrivals are dropped
        in :meth:`_ingest`), so holding their records/samples would be a
        per-window memory leak over an unbounded stream.
        """
        self._window_records.pop(window, None)
        for sid in self.cluster.servers:
            self._window_samples.pop((window, sid), None)

    def _completeness(self, window: int) -> float:
        """Fraction of expected server samples present for ``window``."""
        expected = max(1, round(self.window_size /
                                self.monitor.sample_interval))
        servers = self.cluster.servers
        if not servers:
            return 1.0
        have = 0.0
        for sid in servers:
            rows = self._window_samples.get((window, sid))
            if rows:
                have += min(1.0, len(rows) / expected)
        return have / len(servers)

    def _vector_for(self, window: int) -> np.ndarray:
        """Per-server vector of one closed window (offline-identical)."""
        aggregator = ClientWindowAggregator(self.window_size)
        client = aggregator.aggregate(self._window_records.get(window, []),
                                      self.job)
        servers = self.cluster.servers
        n_client = len(CLIENT_FEATURES)
        X = np.zeros((1, len(servers), n_client + len(SERVER_FEATURES)))
        for si, sid in enumerate(servers):
            cf = client.get((window, sid))
            if cf is not None:
                X[0, si, :n_client] = [cf[name] for name in CLIENT_FEATURES]
            rows = self._window_samples.get((window, sid))
            if rows:
                X[0, si, n_client:] = self._aggregate_samples(rows)
        return X

    @staticmethod
    def _aggregate_samples(rows: list[dict]) -> np.ndarray:
        """Flat server-feature row in ``SERVER_FEATURES`` order.

        One (samples, metrics) matrix and three axis-0 reductions instead
        of a python loop with a fresh array per metric. Window sample
        counts are far below numpy's pairwise-summation block (128), so
        the column statistics are bit-identical to the per-metric arrays
        the offline aggregator builds.
        """
        from repro.monitor.schema import SERVER_METRICS

        M = np.array([[row[m] for m in SERVER_METRICS] for row in rows],
                     dtype=float)
        out = np.empty(3 * M.shape[1])
        out[0::3] = M.sum(axis=0)
        out[1::3] = M.mean(axis=0)
        out[2::3] = M.std(axis=0)
        return out

    # -- the loop -----------------------------------------------------------------

    def _loop(self):
        import time

        env = self.cluster.env
        window = 0
        emit_counter = REGISTRY.counter("online.predictions")
        stale_counter = REGISTRY.counter("online.stale_predictions")
        latency_hist = REGISTRY.histogram("online.predict_latency_seconds")
        while True:
            # Wake just after the window boundary (plus the reorder
            # allowance) so the boundary sample — and any straggler the
            # reorder buffer is willing to wait for — has been recorded.
            target_time = ((window + 1 + self.reorder_windows)
                           * self.window_size + 1e-9)
            yield env.timeout(max(0.0, target_time - env.now))
            self._ingest()
            completeness = self._completeness(window)
            stale = (self.min_completeness > 0
                     and completeness < self.min_completeness)
            t0 = time.perf_counter()
            if stale and self._last_good is not None:
                # Too blind to trust the vector: repeat the last good
                # prediction rather than classify mostly-zeros as idle.
                probs = self._last_good.probabilities
            else:
                X = self._vector_for(window)
                # The fused scorer returns a view into its own buffer;
                # the tuple() copy below is the hand-off.
                probs = tuple(
                    float(p) for p in self._scorer.predict_proba(X)[0]
                )
            latency_hist.observe(time.perf_counter() - t0)
            emit_counter.inc()
            if stale:
                stale_counter.inc()
            pred = WindowPrediction(
                window=window,
                severity=int(np.argmax(probs)),
                probabilities=tuple(probs),
                emitted_at=env.now,
                completeness=completeness,
                stale=stale,
            )
            self.predictions.append(pred)
            self._emitted_through = window
            self._evict(window)
            if not stale:
                self._last_good = pred
            if self.on_prediction is not None:
                self.on_prediction(pred)
            logger.debug(
                "window %d: severity=%d (p=%.3f)%s emitted at t=%.3fs",
                window, pred.severity, max(pred.probabilities),
                " [stale]" if stale else "", env.now,
            )
            window += 1
