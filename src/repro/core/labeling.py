"""Ground-truth labelling from paired baseline/interference runs.

The paper collects labelled data by executing the *target workload* twice:
once alone (baseline) and once with *interference workloads* on other
nodes. The relative latency of the *same* operations determines the
degradation level per window (§III-D)::

    Level_degrade = avg_{i in IORequests} iotime_interf(i) / iotime_base(i)

Operations match exactly by ``(job, rank, op_id)`` because workloads are
deterministic generators (see :mod:`repro.workloads.base`). Levels are
binned into severity classes: binary at 2x (Figure 3/5), or the
mild / moderate / severe bins [<2, 2–5, >=5) of Figure 4 following
Lu et al.'s Perseus taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.records import IORecord
from repro.common.windows import window_indices

__all__ = [
    "BINARY_THRESHOLDS",
    "MULTICLASS_THRESHOLDS",
    "match_operations",
    "bin_level",
    "DegradationLabeller",
]

#: Binary classification: below / at-or-above 2x slowdown.
BINARY_THRESHOLDS: tuple[float, ...] = (2.0,)

#: 3-class: mild (<2x), moderate (2-5x), severe (>=5x).
MULTICLASS_THRESHOLDS: tuple[float, ...] = (2.0, 5.0)

#: Latency floor guarding ratios of near-instant baseline ops.
_MIN_BASELINE_SECONDS = 1e-9


def match_operations(
    baseline: list[IORecord],
    interference: list[IORecord],
    job: str,
) -> list[tuple[IORecord, IORecord]]:
    """Pair each interference-run op of ``job`` with its baseline twin.

    Matching is exact on ``(job, rank, op_id)``. Ops present in only one
    run (e.g. the interference run was truncated) are dropped, mirroring
    the paper's offline trace matching.
    """
    base_by_key = {r.key: r for r in baseline if r.job == job}
    pairs: list[tuple[IORecord, IORecord]] = []
    for rec in interference:
        if rec.job != job:
            continue
        twin = base_by_key.get(rec.key)
        if twin is not None:
            pairs.append((twin, rec))
    return pairs


def bin_level(level: float, thresholds: tuple[float, ...]) -> int:
    """Severity class of a degradation level: #thresholds it reaches."""
    if level < 0:
        raise ValueError(f"negative degradation level: {level}")
    if list(thresholds) != sorted(thresholds):
        raise ValueError(f"thresholds must be ascending, got {thresholds}")
    return int(sum(level >= t for t in thresholds))


@dataclass
class DegradationLabeller:
    """Computes per-window degradation levels and class labels."""

    window_size: float = 1.0
    thresholds: tuple[float, ...] = BINARY_THRESHOLDS
    #: Ops whose baseline duration is below this floor are skipped: their
    #: ratio is numerically meaningless (both runs effectively free).
    min_baseline: float = _MIN_BASELINE_SECONDS

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if not self.thresholds:
            raise ValueError("need at least one severity threshold")

    @property
    def n_classes(self) -> int:
        return len(self.thresholds) + 1

    def window_levels(
        self,
        baseline: list[IORecord],
        interference: list[IORecord],
        job: str,
    ) -> dict[int, float]:
        """Mean per-op slowdown ratio per window of the interference run.

        Windows are indexed by the op's completion time in the
        *interference* run — the run the monitors observed.

        The group-by runs vectorised; ``np.bincount`` adds weights in
        array order, so per-window sums are bit-identical to the obvious
        sequential loop over matched ops.
        """
        pairs = match_operations(baseline, interference, job)
        if not pairs:
            return {}
        base_dur = np.fromiter((b.duration for b, _ in pairs),
                               dtype=np.float64, count=len(pairs))
        interf_dur = np.fromiter((i.duration for _, i in pairs),
                                 dtype=np.float64, count=len(pairs))
        ends = np.fromiter((i.end for _, i in pairs),
                           dtype=np.float64, count=len(pairs))
        keep = base_dur >= self.min_baseline
        if not keep.any():
            return {}
        ratios = interf_dur[keep] / base_dur[keep]
        wins = window_indices(ends[keep], self.window_size)
        uniq, inverse = np.unique(wins, return_inverse=True)
        sums = np.bincount(inverse, weights=ratios, minlength=len(uniq))
        counts = np.bincount(inverse, minlength=len(uniq))
        means = sums / counts
        return {int(w): float(m) for w, m in zip(uniq, means)}

    def window_labels(
        self,
        baseline: list[IORecord],
        interference: list[IORecord],
        job: str,
    ) -> dict[int, int]:
        """Severity class per window (windows without matched ops omitted)."""
        return {
            w: bin_level(level, self.thresholds)
            for w, level in self.window_levels(baseline, interference, job).items()
        }
