"""Permutation feature importance for interference models.

Which of the collected metrics actually carry the interference signal?
The paper motivates its metric selection (Table II) qualitatively; this
module measures it: permute one feature across the evaluation set
(breaking its relationship with the label while preserving its marginal
distribution) and record how much the model's accuracy drops. Features
whose permutation costs nothing are dead weight; features whose
permutation collapses accuracy carry the signal.

Permutation happens per *feature*, jointly across all servers of a
window, so a server-local metric (e.g. ``weighted_time_mean``) is
destroyed everywhere at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import derive_rng

__all__ = ["FeatureImportance", "permutation_importance",
           "grouped_importance"]


@dataclass(frozen=True)
class FeatureImportance:
    """Importance scores aligned with a feature-name tuple."""

    feature_names: tuple[str, ...]
    #: Mean accuracy drop per feature when permuted (higher = more load-bearing).
    drops: np.ndarray
    baseline_accuracy: float

    def top(self, k: int = 10) -> list[tuple[str, float]]:
        order = np.argsort(self.drops)[::-1]
        return [(self.feature_names[i], float(self.drops[i]))
                for i in order[:k]]

    def render(self, k: int = 10) -> str:
        lines = [f"baseline accuracy: {self.baseline_accuracy:.3f}",
                 f"top-{k} features by permutation importance:"]
        for name, drop in self.top(k):
            lines.append(f"  {name:28s} -{drop:.3f}")
        return "\n".join(lines)


def permutation_importance(
    predict,
    X: np.ndarray,
    y: np.ndarray,
    feature_names: tuple[str, ...],
    n_repeats: int = 3,
    seed: int = 0,
) -> FeatureImportance:
    """Accuracy drop per feature under permutation.

    ``predict`` maps raw ``(n, servers, features)`` arrays to class
    predictions (e.g. ``InterferencePredictor.predict``).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if X.ndim != 3:
        raise ValueError(f"expected (n, servers, features), got {X.shape}")
    if X.shape[2] != len(feature_names):
        raise ValueError(
            f"{X.shape[2]} features but {len(feature_names)} names"
        )
    if len(X) != len(y) or len(X) < 2:
        raise ValueError("need matching X/y with >= 2 samples")
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")

    baseline = float((predict(X) == y).mean())
    drops = np.zeros(X.shape[2])
    for f in range(X.shape[2]):
        drops[f] = baseline - _permuted_score(
            predict, X, y, [f], n_repeats, seed)
    return FeatureImportance(feature_names=tuple(feature_names), drops=drops,
                             baseline_accuracy=baseline)


def _permuted_score(predict, X, y, feature_idx, n_repeats, seed) -> float:
    scores = []
    for rep in range(n_repeats):
        rng = derive_rng(seed, "perm-importance", *feature_idx, rep)
        Xp = X.copy()
        perm = rng.permutation(len(X))
        Xp[:, :, feature_idx] = X[perm][:, :, feature_idx]
        scores.append(float((predict(Xp) == y).mean()))
    return float(np.mean(scores))


def grouped_importance(
    predict,
    X: np.ndarray,
    y: np.ndarray,
    groups: dict[str, list[int]],
    n_repeats: int = 3,
    seed: int = 0,
) -> FeatureImportance:
    """Accuracy drop when a whole feature *group* is permuted jointly.

    Single-feature permutation under-attributes when features are
    redundant (the model falls back on 39 correlated survivors); joint
    permutation of a family — all client-side metrics, all queue
    statistics — measures what the family as a whole contributes, which
    is the question Table II's design actually poses.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if X.ndim != 3:
        raise ValueError(f"expected (n, servers, features), got {X.shape}")
    if not groups:
        raise ValueError("need at least one feature group")
    for name, idx in groups.items():
        if not idx or min(idx) < 0 or max(idx) >= X.shape[2]:
            raise ValueError(f"group {name!r} has out-of-range indices")
    baseline = float((predict(X) == y).mean())
    names = tuple(groups)
    drops = np.zeros(len(groups))
    for gi, (name, idx) in enumerate(groups.items()):
        drops[gi] = baseline - _permuted_score(
            predict, X, y, list(idx), n_repeats, seed)
    return FeatureImportance(feature_names=names, drops=drops,
                             baseline_accuracy=baseline)
