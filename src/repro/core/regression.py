"""Exact-slowdown regression (extension beyond the paper's classifier).

The paper deliberately bins degradation levels rather than predicting
exact ratios (§IV-A: the category matters more than 2.5x vs 2.7x). This
module implements the obvious extension as an ablation target: the same
kernel-based architecture with a single linear output trained to regress
``log2(level)`` under a Huber loss. Working in log space makes a 2x
error at 4x cost the same as at 40x, and the Huber loss keeps the heavy
upper tail of levels from dominating.

The regressor also subsumes the classifier: thresholding its predicted
level reproduces any binning, which :meth:`LevelRegressor.classify`
exposes for direct comparison with the classification models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import Normalizer
from repro.core.labeling import bin_level
from repro.core.nn.kernelnet import KernelInterferenceNet
from repro.core.nn.layers import Dense, Dropout, ReLU, Sequential
from repro.core.nn.train import TrainConfig, TrainHistory, train_regressor
from repro.common.rng import derive_rng

__all__ = ["RegressionMetrics", "LevelRegressor", "spearman_correlation"]


def spearman_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (average ranks for ties)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be equal-length 1-D arrays")
    if len(a) < 2:
        raise ValueError("need at least 2 points")

    def ranks(x: np.ndarray) -> np.ndarray:
        order = np.argsort(x, kind="stable")
        r = np.empty(len(x), dtype=float)
        r[order] = np.arange(len(x), dtype=float)
        # Average ranks of ties.
        for value in np.unique(x):
            mask = x == value
            if mask.sum() > 1:
                r[mask] = r[mask].mean()
        return r

    ra, rb = ranks(a), ranks(b)
    sa, sb = ra.std(), rb.std()
    if sa == 0 or sb == 0:
        return 0.0
    return float(((ra - ra.mean()) * (rb - rb.mean())).mean() / (sa * sb))


@dataclass(frozen=True)
class RegressionMetrics:
    """Quality of level predictions."""

    mae_log2: float  #: mean |log2(pred) - log2(true)|
    rmse_log2: float
    spearman: float  #: rank correlation between predicted and true levels
    within_factor_2: float  #: fraction predicted within 2x of the truth

    def summary(self) -> str:
        return (
            f"mae_log2={self.mae_log2:.3f} rmse_log2={self.rmse_log2:.3f} "
            f"spearman={self.spearman:.3f} within2x={self.within_factor_2:.3f}"
        )


class _KernelRegressorNet:
    """Kernel net with a single linear output (shares the architecture)."""

    def __init__(self, n_servers: int, n_features: int,
                 kernel_hidden: tuple[int, ...], head_hidden: tuple[int, ...],
                 seed: int) -> None:
        # Reuse the classifier topology with a 2-logit head, then project
        # to one value? Simpler: build the same shapes directly.
        self._net = KernelInterferenceNet(
            n_servers, n_features, n_classes=2,
            kernel_hidden=kernel_hidden, head_hidden=head_hidden,
            dropout=0.0, seed=seed,
        )
        rng = derive_rng(seed, "regress-out")
        self._out = Dense(2, 1, rng=rng)

    def params(self):
        return self._net.params() + self._out.params()

    def forward(self, X: np.ndarray, training: bool = False) -> np.ndarray:
        return self._out.forward(self._net.forward(X, training), training)

    def backward(self, grad: np.ndarray) -> None:
        self._net.backward(self._out.backward(grad))


@dataclass
class LevelRegressor:
    """Predicts the degradation *level* of a window (not just its bin)."""

    model: _KernelRegressorNet
    normalizer: Normalizer
    history: TrainHistory | None = field(default=None, repr=False)

    @classmethod
    def train(
        cls,
        X: np.ndarray,
        levels: np.ndarray,
        config: TrainConfig | None = None,
        kernel_hidden: tuple[int, ...] = (64, 32),
        head_hidden: tuple[int, ...] = (32,),
        seed: int = 0,
    ) -> "LevelRegressor":
        X = np.asarray(X, dtype=float)
        levels = np.asarray(levels, dtype=float)
        if (levels <= 0).any():
            raise ValueError("degradation levels must be positive")
        normalizer = Normalizer().fit(X)
        model = _KernelRegressorNet(X.shape[1], X.shape[2], kernel_hidden,
                                    head_hidden, seed)
        config = config or TrainConfig(seed=seed, class_weighting=False)
        history = train_regressor(model, normalizer.transform(X),
                                  np.log2(levels), config)
        return cls(model=model, normalizer=normalizer, history=history)

    def predict_level(self, X: np.ndarray) -> np.ndarray:
        """Predicted degradation levels (>= ~0; in ratio space)."""
        z = self.normalizer.transform(np.asarray(X, dtype=float))
        return np.power(2.0, self.model.forward(z)[:, 0])

    def classify(self, X: np.ndarray, thresholds: tuple[float, ...]) -> np.ndarray:
        """Severity classes derived by thresholding predicted levels."""
        return np.array([bin_level(max(0.0, lv), thresholds)
                         for lv in self.predict_level(X)])

    def evaluate(self, X: np.ndarray, levels: np.ndarray) -> RegressionMetrics:
        levels = np.asarray(levels, dtype=float)
        pred = self.predict_level(X)
        err = np.log2(np.clip(pred, 1e-6, None)) - np.log2(levels)
        return RegressionMetrics(
            mae_log2=float(np.abs(err).mean()),
            rmse_log2=float(np.sqrt((err**2).mean())),
            spearman=spearman_correlation(pred, levels),
            within_factor_2=float((np.abs(err) <= 1.0).mean()),
        )
