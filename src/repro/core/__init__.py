"""The paper's contribution: interference labelling, features and model.

* :mod:`repro.core.labeling` — per-operation baseline/interference
  matching, window degradation levels, severity binning (§III-D);
* :mod:`repro.core.dataset` — dataset container, train/test splitting and
  feature normalisation;
* :mod:`repro.core.nn` — from-scratch NumPy neural network stack and the
  kernel-based per-server architecture (§III-C);
* :mod:`repro.core.baselines` — logistic regression and random forest
  baselines implemented from scratch;
* :mod:`repro.core.metrics` — confusion matrices and P/R/F1 scores;
* :mod:`repro.core.predictor` — the deployable predictor bundling the
  normaliser, the model and the binning thresholds.
"""

from repro.core.labeling import (
    BINARY_THRESHOLDS,
    MULTICLASS_THRESHOLDS,
    DegradationLabeller,
    bin_level,
    match_operations,
)
from repro.core.dataset import Dataset, Normalizer, train_test_split
from repro.core.metrics import (
    ClassificationReport,
    confusion_matrix,
    evaluate,
    render_confusion,
)
from repro.core.predictor import InterferencePredictor

__all__ = [
    "BINARY_THRESHOLDS",
    "MULTICLASS_THRESHOLDS",
    "DegradationLabeller",
    "bin_level",
    "match_operations",
    "Dataset",
    "Normalizer",
    "train_test_split",
    "ClassificationReport",
    "confusion_matrix",
    "evaluate",
    "render_confusion",
    "InterferencePredictor",
]
