"""Classification metrics: confusion matrices and precision/recall/F1.

The paper reports confusion matrices (Figures 3–5) and F1 scores
(abstract: "F1 scores exceeding 90%"). Implemented on NumPy only;
scikit-learn is not available offline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["confusion_matrix", "ClassificationReport", "evaluate", "render_confusion"]


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     n_classes: int | None = None) -> np.ndarray:
    """Rows are true classes, columns predicted classes."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if len(y_true) == 0:
        raise ValueError("empty label arrays")
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    if y_true.min() < 0 or y_pred.min() < 0:
        raise ValueError("negative class labels")
    cm = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(cm, (y_true, y_pred), 1)
    return cm


@dataclass(frozen=True)
class ClassificationReport:
    """Per-class and aggregate metrics derived from a confusion matrix."""

    confusion: np.ndarray
    accuracy: float
    precision: np.ndarray
    recall: np.ndarray
    f1: np.ndarray

    @property
    def macro_f1(self) -> float:
        return float(self.f1.mean())

    @property
    def n_classes(self) -> int:
        return len(self.precision)

    def summary(self) -> str:
        lines = [f"accuracy={self.accuracy:.3f} macro_f1={self.macro_f1:.3f}"]
        for c in range(self.n_classes):
            lines.append(
                f"  class {c}: precision={self.precision[c]:.3f} "
                f"recall={self.recall[c]:.3f} f1={self.f1[c]:.3f}"
            )
        return "\n".join(lines)


def evaluate(y_true: np.ndarray, y_pred: np.ndarray,
             n_classes: int | None = None) -> ClassificationReport:
    """Full report. Classes absent from both truth and prediction score 0."""
    cm = confusion_matrix(y_true, y_pred, n_classes)
    tp = np.diag(cm).astype(float)
    pred_totals = cm.sum(axis=0).astype(float)
    true_totals = cm.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_totals > 0, tp / pred_totals, 0.0)
        recall = np.where(true_totals > 0, tp / true_totals, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return ClassificationReport(
        confusion=cm,
        accuracy=float(tp.sum() / cm.sum()),
        precision=precision,
        recall=recall,
        f1=f1,
    )


def render_confusion(cm: np.ndarray, class_names: list[str] | None = None) -> str:
    """ASCII rendering of a confusion matrix (rows true, columns predicted)."""
    cm = np.asarray(cm)
    n = cm.shape[0]
    names = class_names or [f"class{i}" for i in range(n)]
    if len(names) != n:
        raise ValueError(f"{n} classes but {len(names)} names")
    width = max(8, max(len(s) for s in names) + 2,
                len(str(int(cm.max()))) + 2)
    header = " " * width + "".join(f"{s:>{width}}" for s in names)
    lines = [header + "   (columns: predicted)"]
    for i, name in enumerate(names):
        row = "".join(f"{int(v):>{width}}" for v in cm[i])
        lines.append(f"{name:>{width}}" + row)
    return "\n".join(lines)
