"""Set-attention model over per-server vectors (the paper's future work).

The paper's conclusion names transformers as the next architecture to
investigate (§VI). Per-server vectors form a *set* — there is no
meaningful server order — so the natural transformer variant is a
set-attention encoder: embed each server vector, apply multi-head
self-attention blocks (pre-LayerNorm, residual, position-free), mean-pool
over servers and classify. Like the kernel network it is
permutation-equivariant by construction, but unlike it, servers can
attend to each other *before* pooling, letting the model represent
cross-server patterns (e.g. "one OST is backlogged while its OSS twin is
idle") that a per-server scalar bottleneck cannot.

Everything — attention, LayerNorm, residuals — is implemented with
explicit backpropagation on NumPy and covered by finite-difference
gradient checks in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_rng
from repro.core.nn.layers import Dense, Layer, Param, ReLU, Sequential
from repro.core.nn.losses import softmax_probs

__all__ = ["LayerNorm", "MultiHeadSelfAttention", "TransformerBlock",
           "SetTransformerClassifier"]


class LayerNorm(Layer):
    """Layer normalisation over the last axis with learned gain/bias."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.eps = eps
        self.gain = Param.of(np.ones(dim))
        self.bias = Param.of(np.zeros(dim))
        self._cache: tuple | None = None

    def params(self) -> list[Param]:
        return [self.gain, self.bias]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv
        self._cache = (xhat, inv)
        return xhat * self.gain.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        xhat, inv = self._cache
        d = xhat.shape[-1]
        self.gain.grad += (grad * xhat).reshape(-1, d).sum(axis=0)
        self.bias.grad += grad.reshape(-1, d).sum(axis=0)
        gx = grad * self.gain.value
        # Standard LayerNorm backward over the last axis.
        mean_gx = gx.mean(axis=-1, keepdims=True)
        mean_gx_xhat = (gx * xhat).mean(axis=-1, keepdims=True)
        return inv * (gx - mean_gx - xhat * mean_gx_xhat)


class MultiHeadSelfAttention(Layer):
    """Scaled dot-product self-attention over the server axis.

    Input ``(batch, servers, dim)``; queries, keys and values are linear
    projections; heads are concatenated and re-projected. No positional
    encoding — server identity is carried by the features themselves, and
    the permutation-equivariance is deliberate.
    """

    def __init__(self, dim: int, n_heads: int,
                 rng: np.random.Generator | None = None) -> None:
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {n_heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        scale = 1.0 / np.sqrt(dim)
        self.Wq = Param.of(rng.normal(0, scale, (dim, dim)))
        self.Wk = Param.of(rng.normal(0, scale, (dim, dim)))
        self.Wv = Param.of(rng.normal(0, scale, (dim, dim)))
        self.Wo = Param.of(rng.normal(0, scale, (dim, dim)))
        self._cache: tuple | None = None

    def params(self) -> list[Param]:
        return [self.Wq, self.Wk, self.Wv, self.Wo]

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, s, _ = x.shape
        return x.reshape(b, s, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, s, hd = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, h * hd)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3 or x.shape[-1] != self.dim:
            raise ValueError(f"expected (batch, servers, {self.dim}), got {x.shape}")
        q = self._split_heads(x @ self.Wq.value)  # (b, h, s, hd)
        k = self._split_heads(x @ self.Wk.value)
        v = self._split_heads(x @ self.Wv.value)
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        attn = softmax_probs(scores)  # (b, h, s, s)
        ctx = attn @ v  # (b, h, s, hd)
        merged = self._merge_heads(ctx)
        out = merged @ self.Wo.value
        self._cache = (x, q, k, v, attn, merged)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x, q, k, v, attn, merged = self._cache
        b, s, d = x.shape

        self.Wo.grad += merged.reshape(-1, d).T @ grad.reshape(-1, d)
        dmerged = grad @ self.Wo.value.T
        dctx = self._split_heads(dmerged)  # (b, h, s, hd)

        dattn = dctx @ v.transpose(0, 1, 3, 2)  # (b, h, s, s)
        dv = attn.transpose(0, 1, 3, 2) @ dctx  # (b, h, s, hd)

        # Softmax backward per row.
        dscores = attn * (dattn - (dattn * attn).sum(axis=-1, keepdims=True))
        dscores /= np.sqrt(self.head_dim)
        dq = dscores @ k  # (b, h, s, hd)
        dk = dscores.transpose(0, 1, 3, 2) @ q

        dq_f = self._merge_heads(dq).reshape(-1, d)
        dk_f = self._merge_heads(dk).reshape(-1, d)
        dv_f = self._merge_heads(dv).reshape(-1, d)
        xf = x.reshape(-1, d)
        self.Wq.grad += xf.T @ dq_f
        self.Wk.grad += xf.T @ dk_f
        self.Wv.grad += xf.T @ dv_f
        dx = (dq_f @ self.Wq.value.T + dk_f @ self.Wk.value.T
              + dv_f @ self.Wv.value.T)
        return dx.reshape(b, s, d)


class TransformerBlock(Layer):
    """Pre-LayerNorm transformer block: attention + FFN, both residual."""

    def __init__(self, dim: int, n_heads: int, ffn_mult: int = 2,
                 seed: int = 0, tag: int = 0) -> None:
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, n_heads,
                                           rng=derive_rng(seed, "attn", tag))
        self.ln2 = LayerNorm(dim)
        self.ffn = Sequential([
            Dense(dim, ffn_mult * dim, rng=derive_rng(seed, "ffn1", tag)),
            ReLU(inplace=True),
            Dense(ffn_mult * dim, dim, rng=derive_rng(seed, "ffn2", tag)),
        ])

    def params(self) -> list[Param]:
        return (self.ln1.params() + self.attn.params()
                + self.ln2.params() + self.ffn.params())

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = x + self.attn.forward(self.ln1.forward(x, training), training)
        x = x + self.ffn.forward(self.ln2.forward(x, training), training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = grad + self.ln2.backward(self.ffn.backward(grad))
        g = g + self.ln1.backward(self.attn.backward(g))
        return g


class SetTransformerClassifier:
    """Embed -> transformer blocks -> mean-pool over servers -> classify."""

    def __init__(
        self,
        n_servers: int,
        n_features: int,
        n_classes: int,
        dim: int = 32,
        n_heads: int = 4,
        n_blocks: int = 2,
        seed: int = 0,
    ) -> None:
        if n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {n_classes}")
        self.n_servers = n_servers
        self.n_features = n_features
        self.n_classes = n_classes
        self.embed = Dense(n_features, dim, rng=derive_rng(seed, "embed"))
        self.blocks = [TransformerBlock(dim, n_heads, seed=seed, tag=i)
                       for i in range(n_blocks)]
        self.head = Sequential([
            Dense(dim, dim, rng=derive_rng(seed, "head", 0)),
            ReLU(inplace=True),
            Dense(dim, n_classes, rng=derive_rng(seed, "head", 1)),
        ])
        self._pool_servers: int | None = None

    def params(self) -> list[Param]:
        out = self.embed.params()
        for block in self.blocks:
            out += block.params()
        return out + self.head.params()

    @property
    def param_dtype(self) -> np.dtype:
        """Compute dtype of the trained parameters."""
        return self.embed.W.value.dtype

    def forward(self, X: np.ndarray, training: bool = False) -> np.ndarray:
        X = np.asarray(X, dtype=self.param_dtype)
        if X.ndim != 3 or X.shape[2] != self.n_features:
            raise ValueError(
                f"expected (n, servers, {self.n_features}), got {X.shape}"
            )
        h = self.embed.forward(X, training)
        for block in self.blocks:
            h = block.forward(h, training)
        self._pool_servers = h.shape[1]
        pooled = h.mean(axis=1)
        return self.head.forward(pooled, training)

    def backward(self, grad: np.ndarray) -> None:
        dpooled = self.head.backward(grad)
        s = self._pool_servers or self.n_servers
        dh = np.repeat(dpooled[:, None, :], s, axis=1) / s
        for block in reversed(self.blocks):
            dh = block.backward(dh)
        self.embed.backward(dh)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return softmax_probs(self.forward(X, training=False))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=-1)
