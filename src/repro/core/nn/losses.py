"""Softmax cross-entropy with optional class weighting.

Class weighting matters here: the paper's datasets are imbalanced in both
directions (IO500 is 75% positive, DLIO is 80% negative), and the
confusion matrices it reports require the minority class not to be
ignored.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax_probs", "softmax_cross_entropy", "huber_loss"]


def softmax_probs(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray,
    y: np.ndarray,
    class_weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Mean weighted cross-entropy and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(n, n_classes)`` raw scores.
    y:
        ``(n,)`` integer class labels.
    class_weights:
        Optional ``(n_classes,)`` per-class weights; the loss is the
        weight-normalised mean so the gradient scale stays comparable
        across weightings.
    """
    logits = np.asarray(logits, dtype=float)
    y = np.asarray(y, dtype=int)
    n, n_classes = logits.shape
    if y.shape != (n,):
        raise ValueError(f"labels shape {y.shape} does not match logits {logits.shape}")
    if y.min() < 0 or y.max() >= n_classes:
        raise ValueError("label outside [0, n_classes)")
    probs = softmax_probs(logits)
    picked = probs[np.arange(n), y]
    picked = np.clip(picked, 1e-12, None)
    if class_weights is None:
        weights = np.ones(n)
    else:
        class_weights = np.asarray(class_weights, dtype=float)
        if class_weights.shape != (n_classes,):
            raise ValueError(
                f"class_weights shape {class_weights.shape}, expected ({n_classes},)"
            )
        weights = class_weights[y]
    wsum = weights.sum()
    loss = float((weights * -np.log(picked)).sum() / wsum)
    grad = probs.copy()
    grad[np.arange(n), y] -= 1.0
    grad *= (weights / wsum)[:, None]
    return loss, grad


def huber_loss(pred: np.ndarray, target: np.ndarray,
               delta: float = 1.0) -> tuple[float, np.ndarray]:
    """Mean Huber loss and gradient for regression heads.

    ``pred`` is ``(n, 1)`` or ``(n,)``; robust to the heavy upper tail of
    degradation levels (a 40x window should not dominate the fit).
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    pred = np.asarray(pred, dtype=float)
    squeeze = pred.ndim == 2 and pred.shape[1] == 1
    flat = pred.reshape(len(pred))
    target = np.asarray(target, dtype=float)
    if target.shape != flat.shape:
        raise ValueError(f"target shape {target.shape} vs pred {flat.shape}")
    err = flat - target
    small = np.abs(err) <= delta
    loss = float(np.where(small, 0.5 * err**2,
                          delta * (np.abs(err) - 0.5 * delta)).mean())
    grad = np.where(small, err, delta * np.sign(err)) / len(flat)
    if squeeze:
        grad = grad.reshape(pred.shape)
    return loss, grad
