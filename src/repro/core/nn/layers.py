"""Neural-network layers with explicit backpropagation.

Layers operate on arrays of shape ``(..., features)``: any number of
leading batch dimensions. That is what lets the kernel network apply ONE
:class:`Dense` stack to a ``(batch, servers, features)`` tensor — the
weight-sharing across servers that defines the paper's architecture falls
out of broadcasting, and gradients accumulate over all leading dims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Param", "Layer", "Dense", "ReLU", "Dropout", "Sequential"]


@dataclass
class Param:
    """A trainable tensor and its accumulated gradient."""

    value: np.ndarray
    grad: np.ndarray

    @classmethod
    def of(cls, value: np.ndarray) -> "Param":
        return cls(value=value, grad=np.zeros_like(value))


class Layer:
    """Base layer: forward caches whatever backward needs."""

    def params(self) -> list[Param]:
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Dense(Layer):
    """Affine layer ``y = x @ W + b`` with He-normal initialisation."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        if in_dim < 1 or out_dim < 1:
            raise ValueError(f"bad dense shape: {in_dim} -> {out_dim}")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_dim)
        self.W = Param.of(rng.normal(0.0, scale, size=(in_dim, out_dim)))
        self.b = Param.of(np.zeros(out_dim))
        self._x: np.ndarray | None = None
        # Scratch buffers reused across training steps (the hot loop runs
        # thousands of same-shaped minibatches; fresh allocations per step
        # dominated small-model training profiles). Only the training path
        # uses them — inference always returns freshly allocated arrays,
        # so public predict results are safe to hold across calls.
        self._out_buf: np.ndarray | None = None
        self._gw_buf: np.ndarray | None = None
        self._dx_buf: np.ndarray | None = None

    def params(self) -> list[Param]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[-1] != self.W.value.shape[0]:
            raise ValueError(
                f"input has {x.shape[-1]} features, layer expects "
                f"{self.W.value.shape[0]}"
            )
        self._x = x
        W = self.W.value
        if training:
            shape = x.shape[:-1] + (W.shape[1],)
            dtype = np.result_type(x.dtype, W.dtype)
            buf = self._out_buf
            if buf is None or buf.shape != shape or buf.dtype != dtype:
                buf = self._out_buf = np.empty(shape, dtype=dtype)
            # Same arithmetic as ``x @ W + b``, written into the scratch.
            np.matmul(x, W, out=buf)
            buf += self.b.value
            return buf
        return x @ W + self.b.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward")
        x = self._x
        self._x = None  # release the cached batch once consumed
        W = self.W.value
        xf = x.reshape(-1, x.shape[-1])
        gf = grad.reshape(-1, grad.shape[-1])
        gw = self._gw_buf
        if gw is None or gw.dtype != self.W.grad.dtype:
            gw = self._gw_buf = np.empty_like(self.W.grad)
        np.matmul(xf.T, gf, out=gw)
        self.W.grad += gw
        self.b.grad += gf.sum(axis=0)
        dx = self._dx_buf
        if dx is None or dx.shape != (gf.shape[0], W.shape[0]) or dx.dtype != W.dtype:
            dx = self._dx_buf = np.empty((gf.shape[0], W.shape[0]), dtype=W.dtype)
        np.matmul(gf, W.T, out=dx)
        return dx.reshape(x.shape)


class ReLU(Layer):
    """Rectified linear unit.

    ``inplace=True`` rectifies by multiplying the input array by its own
    positivity mask instead of allocating a second output array. Only
    safe when the input is exclusively this layer's to mutate — e.g. a
    fresh (or scratch-buffer) :class:`Dense` output, as in the bundled
    models — never an array the caller still reads. The results are
    numerically identical to the allocating path (negative entries become
    zero; only the IEEE sign of those zeros can differ, which no
    downstream computation observes).
    """

    def __init__(self, inplace: bool = False) -> None:
        self.inplace = inplace
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        self._mask = mask
        if self.inplace:
            np.multiply(x, mask, out=x)
            return x
        return np.where(mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        mask = self._mask
        self._mask = None  # release the cached batch once consumed
        if self.inplace:
            # The incoming grad is the downstream layer's freshly computed
            # (or scratch) array; masking it in place saves an allocation.
            np.multiply(grad, mask, out=grad)
            return grad
        return np.where(mask, grad, 0.0)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        mask = self._mask
        self._mask = None  # release the cached batch once consumed
        return grad * mask


class Sequential(Layer):
    """A chain of layers."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = list(layers)

    def params(self) -> list[Param]:
        return [p for layer in self.layers for p in layer.params()]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad
