"""Neural-network layers with explicit backpropagation.

Layers operate on arrays of shape ``(..., features)``: any number of
leading batch dimensions. That is what lets the kernel network apply ONE
:class:`Dense` stack to a ``(batch, servers, features)`` tensor — the
weight-sharing across servers that defines the paper's architecture falls
out of broadcasting, and gradients accumulate over all leading dims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Param", "Layer", "Dense", "ReLU", "Dropout", "Sequential"]


@dataclass
class Param:
    """A trainable tensor and its accumulated gradient."""

    value: np.ndarray
    grad: np.ndarray

    @classmethod
    def of(cls, value: np.ndarray) -> "Param":
        return cls(value=value, grad=np.zeros_like(value))


class Layer:
    """Base layer: forward caches whatever backward needs."""

    def params(self) -> list[Param]:
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Dense(Layer):
    """Affine layer ``y = x @ W + b`` with He-normal initialisation."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        if in_dim < 1 or out_dim < 1:
            raise ValueError(f"bad dense shape: {in_dim} -> {out_dim}")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_dim)
        self.W = Param.of(rng.normal(0.0, scale, size=(in_dim, out_dim)))
        self.b = Param.of(np.zeros(out_dim))
        self._x: np.ndarray | None = None

    def params(self) -> list[Param]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[-1] != self.W.value.shape[0]:
            raise ValueError(
                f"input has {x.shape[-1]} features, layer expects "
                f"{self.W.value.shape[0]}"
            )
        self._x = x
        return x @ self.W.value + self.b.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward")
        x = self._x
        self._x = None  # release the cached batch once consumed
        xf = x.reshape(-1, x.shape[-1])
        gf = grad.reshape(-1, grad.shape[-1])
        self.W.grad += xf.T @ gf
        self.b.grad += gf.sum(axis=0)
        return (gf @ self.W.value.T).reshape(x.shape)


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        mask = self._mask
        self._mask = None  # release the cached batch once consumed
        return np.where(mask, grad, 0.0)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        mask = self._mask
        self._mask = None  # release the cached batch once consumed
        return grad * mask


class Sequential(Layer):
    """A chain of layers."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = list(layers)

    def params(self) -> list[Param]:
        return [p for layer in self.layers for p in layer.params()]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad
