"""The paper's kernel-based per-server network (§III-C).

One small dense network (the *kernel*) is applied with shared weights to
every per-server vector, reducing each to a single scalar; the scalars
are concatenated in server order and fed to an MLP head for multi-bin
classification. The motivation in the paper: applications may use only a
subset of OSTs, or different OSTs across runs, so the model must learn to
"generally interpret the data from any server" — sharing the kernel
weights gives exactly that inductive bias, which the ablation experiments
(A1) measure against a flat MLP.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_rng
from repro.core.nn.layers import Dense, Dropout, ReLU, Sequential
from repro.core.nn.losses import softmax_probs

__all__ = ["KernelInterferenceNet"]


class KernelInterferenceNet:
    """Shared per-server kernel + MLP classification head."""

    def __init__(
        self,
        n_servers: int,
        n_features: int,
        n_classes: int,
        kernel_hidden: tuple[int, ...] = (64, 32),
        head_hidden: tuple[int, ...] = (32,),
        dropout: float = 0.1,
        seed: int = 0,
    ) -> None:
        if n_servers < 1 or n_features < 1:
            raise ValueError("need >= 1 server and feature")
        if n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {n_classes}")
        self.n_servers = n_servers
        self.n_features = n_features
        self.n_classes = n_classes
        # Recorded so a trained net can be serialised and rebuilt
        # (repro.core.predictor save/load, repro.parallel.modelcache).
        self.kernel_hidden = tuple(kernel_hidden)
        self.head_hidden = tuple(head_hidden)
        self.dropout = dropout

        kernel_layers = []
        prev = n_features
        for i, width in enumerate(kernel_hidden):
            kernel_layers.append(Dense(prev, width, rng=derive_rng(seed, "k", i)))
            kernel_layers.append(ReLU(inplace=True))
            if dropout > 0:
                kernel_layers.append(Dropout(dropout, rng=derive_rng(seed, "kd", i)))
            prev = width
        kernel_layers.append(Dense(prev, 1, rng=derive_rng(seed, "k", "out")))
        self.kernel = Sequential(kernel_layers)

        head_layers = []
        prev = n_servers
        for i, width in enumerate(head_hidden):
            head_layers.append(Dense(prev, width, rng=derive_rng(seed, "h", i)))
            head_layers.append(ReLU(inplace=True))
            prev = width
        head_layers.append(Dense(prev, n_classes, rng=derive_rng(seed, "h", "out")))
        self.head = Sequential(head_layers)

    # -- training interface -----------------------------------------------------

    def params(self):
        return self.kernel.params() + self.head.params()

    @property
    def param_dtype(self) -> np.dtype:
        """Compute dtype of the trained parameters (float64, or float32
        when trained with ``TrainConfig(dtype="float32")``)."""
        return self.kernel.layers[0].W.value.dtype

    def forward(self, X: np.ndarray, training: bool = False) -> np.ndarray:
        """Logits for a ``(n, servers, features)`` batch.

        Inputs are cast to the *parameter* dtype, not hard-coded float64:
        a float32-trained model must not silently promote every batch
        back to float64 (which both doubles the matmul cost and produces
        mixed-precision results).
        """
        X = np.asarray(X, dtype=self.param_dtype)
        if X.ndim != 3 or X.shape[1] != self.n_servers or X.shape[2] != self.n_features:
            raise ValueError(
                f"expected (n, {self.n_servers}, {self.n_features}), got {X.shape}"
            )
        # Shared kernel over every server vector: (n, s, f) -> (n, s, 1).
        per_server = self.kernel.forward(X, training=training)
        self._kernel_out_shape = per_server.shape
        scores = per_server[..., 0]  # (n, s)
        return self.head.forward(scores, training=training)

    def backward(self, grad: np.ndarray) -> None:
        dscores = self.head.backward(grad)  # (n, s)
        self.kernel.backward(dscores[..., None])

    # -- inference ----------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return softmax_probs(self.forward(X, training=False))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=-1)

    def server_scores(self, X: np.ndarray) -> np.ndarray:
        """The kernel's per-server scalar outputs — an interpretability
        hook: which server's state drives the prediction."""
        return self.kernel.forward(np.asarray(X, dtype=self.param_dtype),
                                   training=False)[..., 0]
