"""Optimisers: Adam and plain SGD over :class:`~repro.core.nn.layers.Param`."""

from __future__ import annotations

import numpy as np

from repro.core.nn.layers import Param

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Param], lr: float = 1e-2,
                 momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad[...] = 0.0

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            v *= self.momentum
            v -= self.lr * p.grad
            p.value += v


class Adam:
    """Adam (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(self, params: list[Param], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad[...] = 0.0

    def step(self) -> None:
        self._t += 1
        b1c = 1.0 - self.beta1**self._t
        b2c = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            update = (m / b1c) / (np.sqrt(v / b2c) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.value
            p.value -= self.lr * update
