"""Plain MLP classifier over flattened feature vectors.

Used both as an ablation baseline against the kernel network (it sees the
concatenation of all servers' vectors, so it is *not* permutation-robust)
and as the classification head inside the kernel network.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_rng
from repro.core.nn.layers import Dense, Dropout, ReLU, Sequential
from repro.core.nn.losses import softmax_probs

__all__ = ["MLPClassifier"]


class MLPClassifier:
    """A dense ReLU network producing class logits."""

    def __init__(self, in_dim: int, hidden: tuple[int, ...], n_classes: int,
                 dropout: float = 0.0, seed: int = 0) -> None:
        if n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {n_classes}")
        layers = []
        prev = in_dim
        for i, width in enumerate(hidden):
            layers.append(Dense(prev, width, rng=derive_rng(seed, "dense", i)))
            layers.append(ReLU(inplace=True))
            if dropout > 0:
                layers.append(Dropout(dropout, rng=derive_rng(seed, "drop", i)))
            prev = width
        layers.append(Dense(prev, n_classes, rng=derive_rng(seed, "dense", "out")))
        self.net = Sequential(layers)
        self.in_dim = in_dim
        self.n_classes = n_classes

    # -- training interface (used by train_classifier) ------------------------

    def params(self):
        return self.net.params()

    @property
    def param_dtype(self) -> np.dtype:
        """Compute dtype of the trained parameters."""
        return self.net.layers[0].W.value.dtype

    def forward(self, X: np.ndarray, training: bool = False) -> np.ndarray:
        """Logits for ``(n, in_dim)`` or ``(n, servers, features)`` input
        (the latter is flattened, making this the non-kernel ablation).

        Inputs follow the parameter dtype so float32-trained models stay
        float32 end to end instead of re-promoting every batch."""
        X = np.asarray(X, dtype=self.param_dtype)
        if X.ndim == 3:
            X = X.reshape(len(X), -1)
        return self.net.forward(X, training=training)

    def backward(self, grad: np.ndarray) -> None:
        self.net.backward(grad)

    # -- inference -------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return softmax_probs(self.forward(X, training=False))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=-1)
