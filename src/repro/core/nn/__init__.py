"""From-scratch NumPy neural network stack.

PyTorch (the paper's framework) is unavailable offline, so this package
implements the pieces the model needs: dense/ReLU/dropout layers with
full backpropagation, weighted softmax cross-entropy, Adam, a training
loop with early stopping, and the paper's kernel-based per-server
architecture (:class:`~repro.core.nn.kernelnet.KernelInterferenceNet`).
Gradients are verified against finite differences in the test suite.
"""

from repro.core.nn.layers import Dense, Dropout, ReLU, Sequential
from repro.core.nn.losses import huber_loss, softmax_cross_entropy, softmax_probs
from repro.core.nn.optim import Adam, SGD
from repro.core.nn.network import MLPClassifier
from repro.core.nn.kernelnet import KernelInterferenceNet
from repro.core.nn.attention import (
    LayerNorm,
    MultiHeadSelfAttention,
    SetTransformerClassifier,
    TransformerBlock,
)
from repro.core.nn.train import (
    TrainConfig,
    TrainHistory,
    train_classifier,
    train_regressor,
)

__all__ = [
    "Dense",
    "Dropout",
    "ReLU",
    "Sequential",
    "softmax_cross_entropy",
    "softmax_probs",
    "huber_loss",
    "Adam",
    "SGD",
    "MLPClassifier",
    "KernelInterferenceNet",
    "LayerNorm",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "SetTransformerClassifier",
    "TrainConfig",
    "TrainHistory",
    "train_classifier",
    "train_regressor",
]
