"""Minibatch training loops with validation-based early stopping."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import derive_rng
from repro.core.nn.losses import huber_loss, softmax_cross_entropy
from repro.core.nn.optim import Adam
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY

__all__ = ["TrainConfig", "TrainHistory", "restart_seed", "train_classifier",
           "train_regressor"]

logger = get_logger("core.nn.train")

#: Seed stride between independent training restarts.  Shared by the
#: serial restart loop (``InterferencePredictor.train``) and the parallel
#: ``repro.parallel.TrainExecutor`` so both initialise restart ``r`` of a
#: run seeded ``s`` identically — the bit-identity contract between them.
RESTART_SEED_STRIDE = 7919


def restart_seed(seed: int, restart: int) -> int:
    """Model-init seed of independent restart ``restart`` of a training
    run seeded ``seed``."""
    return seed + RESTART_SEED_STRIDE * restart


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 120
    batch_size: int = 64
    lr: float = 2e-3
    weight_decay: float = 1e-5
    val_fraction: float = 0.15
    #: Early-stopping patience. Generous by default: validation slices on
    #: window datasets are small (tens of samples), so the val loss is
    #: noisy and aggressive stopping freezes half-trained models.
    patience: int = 25
    class_weighting: bool = True
    seed: int = 0
    #: Compute dtype of the training loop. ``"float32"`` casts the model
    #: parameters once up front (minibatches are cast as they are
    #: gathered, so a memmap-backed ``X`` is never densified) and
    #: roughly halves the
    #: per-step matmul cost on these small models; opt-in because the
    #: default float64 path is what the paper-reproduction figures (and
    #: their bit-exactness tests) are pinned to.
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if not 0.0 <= self.val_fraction < 1.0:
            raise ValueError("val_fraction must be in [0, 1)")
        if self.dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )


@dataclass
class TrainHistory:
    """Loss traces and the early-stopping outcome."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False


def _class_weights(y: np.ndarray, n_classes: int) -> np.ndarray:
    """Inverse-frequency weights, normalised to mean 1."""
    counts = np.bincount(y, minlength=n_classes).astype(float)
    counts[counts == 0] = 1.0
    w = len(y) / (n_classes * counts)
    return w / w.mean()


def train_classifier(model, X: np.ndarray, y: np.ndarray,
                     config: TrainConfig | None = None,
                     normalizer=None) -> TrainHistory:
    """Train a classifier (softmax cross-entropy) in place.

    A validation slice is held out for early stopping; the parameters of
    the best validation epoch are restored before returning.
    """
    config = config or TrainConfig()
    y = np.asarray(y, dtype=int)
    weights = (_class_weights(y, model.n_classes)
               if config.class_weighting else None)
    return _train(model, X, y,
                  lambda logits, target: softmax_cross_entropy(
                      logits, target, weights),
                  config, normalizer=normalizer)


def train_regressor(model, X: np.ndarray, y: np.ndarray,
                    config: TrainConfig | None = None,
                    delta: float = 1.0, normalizer=None) -> TrainHistory:
    """Train a 1-output regression model (Huber loss) in place."""
    config = config or TrainConfig()
    y = np.asarray(y, dtype=float)
    return _train(model, X, y,
                  lambda pred, target: huber_loss(pred, target, delta),
                  config, normalizer=normalizer)


def _train(model, X: np.ndarray, y: np.ndarray, loss_fn,
           config: TrainConfig, normalizer=None) -> TrainHistory:
    """Shared minibatch loop: any model exposing params/forward/backward.

    ``X`` is only ever read in row batches — it may be a memmap (the
    out-of-core :class:`repro.data.DatasetStore` path) and is never
    densified.  A fitted ``normalizer`` is applied per batch *after* the
    row gather, and the optional float32 cast after that; both are
    elementwise, so they commute with row indexing and the resulting
    parameter trajectory is bit-identical to transforming and casting
    the whole array up front (pinned by tests/data).
    """
    X = np.asarray(X, dtype=float)
    if len(X) != len(y):
        raise ValueError(f"{len(X)} samples but {len(y)} labels")
    if len(X) < 2:
        raise ValueError("need at least 2 samples")

    # One params() walk per training run: the list is stable for a given
    # model, and the optimiser, gradient-norm probe and best-state
    # snapshots all iterate it every epoch.
    params = model.params()
    cast32 = config.dtype == "float32"
    if cast32:
        if y.dtype.kind == "f":
            y = y.astype(np.float32)
        for p in params:
            p.value = p.value.astype(np.float32)
            p.grad = np.zeros_like(p.value)

    def fetch(rows: np.ndarray) -> np.ndarray:
        batch = X[rows]
        if normalizer is not None:
            batch = normalizer.transform(batch)
        if cast32:
            batch = batch.astype(np.float32)
        return batch

    rng = derive_rng(config.seed, "train")
    perm = rng.permutation(len(X))
    n_val = int(len(X) * config.val_fraction)
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    if len(train_idx) == 0:
        train_idx = perm
    ytr = y[train_idx]
    Xval, yval = fetch(val_idx), y[val_idx]

    opt = Adam(params, lr=config.lr, weight_decay=config.weight_decay)
    history = TrainHistory()
    best_val = np.inf
    best_state: list[np.ndarray] | None = None
    since_best = 0

    logger.info(
        "training %s: %d train / %d val samples, <=%d epochs, batch %d",
        type(model).__name__, len(train_idx), len(Xval), config.epochs,
        config.batch_size,
    )
    epoch_timer = REGISTRY.histogram("train.epoch_seconds")
    epoch_counter = REGISTRY.counter("train.epochs")
    grad_gauge = REGISTRY.gauge("train.grad_norm")
    val_gauge = REGISTRY.gauge("train.val_loss")

    for epoch in range(config.epochs):
        t0 = time.perf_counter()
        order = rng.permutation(len(train_idx))
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, len(order), config.batch_size):
            idx = order[start:start + config.batch_size]
            opt.zero_grad()
            out = model.forward(fetch(train_idx[idx]), training=True)
            loss, dout = loss_fn(out, ytr[idx])
            model.backward(dout)
            opt.step()
            epoch_loss += loss
            n_batches += 1
        history.train_loss.append(epoch_loss / max(1, n_batches))
        # Global gradient norm of the epoch's final batch: a cheap
        # divergence/vanishing indicator without touching the hot loop.
        grad_norm = math.sqrt(
            sum(float(np.sum(p.grad * p.grad)) for p in params)
        )

        if len(Xval):
            out = model.forward(Xval, training=False)
            val_loss, _ = loss_fn(out, yval)
        else:
            val_loss = history.train_loss[-1]
        history.val_loss.append(val_loss)

        epoch_timer.observe(time.perf_counter() - t0)
        epoch_counter.inc()
        grad_gauge.set(grad_norm)
        val_gauge.set(float(val_loss))
        logger.debug(
            "epoch %d: train_loss=%.6f val_loss=%.6f grad_norm=%.4g",
            epoch, history.train_loss[-1], val_loss, grad_norm,
        )

        if val_loss < best_val - 1e-6:
            best_val = val_loss
            # Snapshot into preallocated buffers: allocating a fresh copy
            # of every parameter each improving epoch dominated small-run
            # allocation churn.
            if best_state is None:
                best_state = [p.value.copy() for p in params]
            else:
                for buf, p in zip(best_state, params):
                    np.copyto(buf, p.value)
            history.best_epoch = epoch
            since_best = 0
        else:
            since_best += 1
            if since_best >= config.patience:
                history.stopped_early = True
                break

    if best_state is not None:
        for p, v in zip(params, best_state):
            p.value[...] = v
    logger.info(
        "training done: best epoch %d (val_loss=%.6f), %s",
        history.best_epoch, best_val,
        "stopped early" if history.stopped_early else
        f"ran all {len(history.train_loss)} epochs",
    )
    return history
