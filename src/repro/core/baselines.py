"""Baseline classifiers implemented from scratch (no scikit-learn offline).

Used by the ablation experiments (A1) to quantify what the kernel network
buys over simpler models on the same per-server vectors (flattened):

* :class:`LogisticRegressionClassifier` — multinomial softmax regression
  trained with full-batch gradient descent + L2;
* :class:`RandomForestClassifier` — bagged CART trees with Gini impurity,
  quantile-candidate splits and sqrt-feature subsampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import derive_rng
from repro.core.nn.losses import softmax_cross_entropy, softmax_probs

__all__ = ["LogisticRegressionClassifier", "RandomForestClassifier"]


def _flatten(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim == 3:
        return X.reshape(len(X), -1)
    if X.ndim == 2:
        return X
    raise ValueError(f"expected 2-D or 3-D input, got shape {X.shape}")


class LogisticRegressionClassifier:
    """Multinomial logistic regression with L2 regularisation."""

    def __init__(self, n_classes: int, lr: float = 0.1, epochs: int = 300,
                 l2: float = 1e-4, seed: int = 0) -> None:
        if n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {n_classes}")
        self.n_classes = n_classes
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self.W: np.ndarray | None = None
        self.b: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        Xf = _flatten(X)
        y = np.asarray(y, dtype=int)
        n, d = Xf.shape
        rng = derive_rng(self.seed, "logreg")
        self.W = rng.normal(0.0, 0.01, size=(d, self.n_classes))
        self.b = np.zeros(self.n_classes)
        for _ in range(self.epochs):
            logits = Xf @ self.W + self.b
            _, dlogits = softmax_cross_entropy(logits, y)
            self.W -= self.lr * (Xf.T @ dlogits + self.l2 * self.W)
            self.b -= self.lr * dlogits.sum(axis=0)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.W is None:
            raise RuntimeError("predict before fit")
        return softmax_probs(_flatten(X) @ self.W + self.b)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=-1)


@dataclass
class _TreeNode:
    """One CART node; leaves carry a class distribution."""

    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    distribution: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.distribution is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class _CartTree:
    """A single Gini-impurity decision tree with quantile split candidates."""

    def __init__(self, n_classes: int, max_depth: int, min_leaf: int,
                 n_feature_candidates: int, n_thresholds: int,
                 rng: np.random.Generator) -> None:
        self.n_classes = n_classes
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.n_feature_candidates = n_feature_candidates
        self.n_thresholds = n_thresholds
        self.rng = rng
        self.root: _TreeNode | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.root = self._build(X, y, depth=0)

    def _leaf(self, y: np.ndarray) -> _TreeNode:
        counts = np.bincount(y, minlength=self.n_classes).astype(float)
        return _TreeNode(distribution=counts / max(1.0, counts.sum()))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        if depth >= self.max_depth or len(y) < 2 * self.min_leaf or len(set(y.tolist())) == 1:
            return self._leaf(y)
        n_feats = X.shape[1]
        feats = self.rng.choice(n_feats, size=min(self.n_feature_candidates, n_feats),
                                replace=False)
        parent_counts = np.bincount(y, minlength=self.n_classes)
        best = (0.0, -1, 0.0)  # (gain, feature, threshold)
        parent_gini = _gini(parent_counts)
        for f in feats:
            col = X[:, f]
            qs = np.quantile(col, np.linspace(0.1, 0.9, self.n_thresholds))
            for t in np.unique(qs):
                mask = col <= t
                n_left = int(mask.sum())
                if n_left < self.min_leaf or len(y) - n_left < self.min_leaf:
                    continue
                lc = np.bincount(y[mask], minlength=self.n_classes)
                rc = parent_counts - lc
                w = n_left / len(y)
                gain = parent_gini - (w * _gini(lc) + (1 - w) * _gini(rc))
                if gain > best[0]:
                    best = (gain, int(f), float(t))
        if best[1] < 0:
            return self._leaf(y)
        _, f, t = best
        mask = X[:, f] <= t
        return _TreeNode(
            feature=f,
            threshold=t,
            left=self._build(X[mask], y[mask], depth + 1),
            right=self._build(X[~mask], y[~mask], depth + 1),
        )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("predict before fit")
        out = np.zeros((len(X), self.n_classes))
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.distribution
        return out


class RandomForestClassifier:
    """Bootstrap-aggregated CART trees."""

    def __init__(self, n_classes: int, n_trees: int = 20, max_depth: int = 10,
                 min_leaf: int = 4, n_thresholds: int = 12, seed: int = 0) -> None:
        if n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {n_classes}")
        if n_trees < 1:
            raise ValueError(f"need >= 1 tree, got {n_trees}")
        self.n_classes = n_classes
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.n_thresholds = n_thresholds
        self.seed = seed
        self.trees: list[_CartTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        Xf = _flatten(X)
        y = np.asarray(y, dtype=int)
        n, d = Xf.shape
        n_candidates = max(1, int(np.sqrt(d)))
        self.trees = []
        for i in range(self.n_trees):
            rng = derive_rng(self.seed, "rf", i)
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = _CartTree(self.n_classes, self.max_depth, self.min_leaf,
                             n_candidates, self.n_thresholds, rng)
            tree.fit(Xf[idx], y[idx])
            self.trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("predict before fit")
        Xf = _flatten(X)
        return np.mean([t.predict_proba(Xf) for t in self.trees], axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=-1)
