"""The seven IO500 tasks used throughout the paper.

Table I selects seven representative IO500 benchmark tasks; this module
provides a factory building each by name at a configurable scale, plus the
canonical task list in the paper's row order.
"""

from __future__ import annotations

from repro.common.units import MIB
from repro.workloads.base import Workload
from repro.workloads.ior import IorConfig, IorWorkload
from repro.workloads.mdtest import MDTestConfig, MDTestWorkload

__all__ = ["IO500_TASKS", "make_io500_task"]

#: The paper's Table I row/column order.
IO500_TASKS: tuple[str, ...] = (
    "ior-easy-read",
    "ior-hard-read",
    "mdt-hard-read",
    "ior-easy-write",
    "ior-hard-write",
    "mdt-easy-write",
    "mdt-hard-write",
)


def make_io500_task(
    task: str,
    name: str | None = None,
    ranks: int = 4,
    scale: float = 1.0,
) -> Workload:
    """Build one of the seven IO500 tasks.

    ``scale`` multiplies the per-rank volume / file count so experiments
    can trade fidelity for speed; ``name`` overrides the job name so
    several instances of the same task can coexist in one run.
    """
    if task not in IO500_TASKS:
        raise ValueError(f"unknown IO500 task {task!r}; choose from {IO500_TASKS}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    kind, mode, access = task.split("-")
    if kind == "ior":
        cfg = IorConfig(
            mode=mode,
            access=access,
            ranks=ranks,
            bytes_per_rank=max(1, int(32 * MIB * scale)),
            transfer_size=1 * MIB,
        )
        return IorWorkload(cfg, name=name)
    cfg = MDTestConfig(
        mode=mode,
        access=access,
        ranks=ranks,
        files_per_rank=max(1, int(64 * scale)),
    )
    return MDTestWorkload(cfg, name=name)
