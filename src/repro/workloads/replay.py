"""Trace replay: re-issue a recorded DXT trace as a workload.

The paper's pipeline records application traces (Darshan DXT) and labels
them offline. Replay closes the loop: a recorded trace — ours or an
externally supplied DXT log (see :mod:`repro.monitor.darshan`) — becomes
a :class:`~repro.workloads.base.Workload` that re-issues the same
operations with the original inter-operation think times, so real
applications can be studied under *new* interference conditions without
re-running the application itself.

Timing semantics: each op waits until its recorded start offset (relative
to the rank's first op) or until the previous op finished, whichever is
later — replays preserve compute gaps but never issue overlapping ops in
one rank. Data ops on files absent from the namespace are staged in
:meth:`prepare`.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.common.records import IORecord, OpType
from repro.sim.client import ClientSession
from repro.sim.cluster import Cluster
from repro.workloads.base import Workload

__all__ = ["TraceReplayWorkload"]


class TraceReplayWorkload(Workload):
    """Replays a list of :class:`IORecord` as a deterministic workload."""

    def __init__(self, records: list[IORecord], name: str = "replay",
                 preserve_think_time: bool = True) -> None:
        if not records:
            raise ValueError("cannot replay an empty trace")
        jobs = {r.job for r in records}
        if len(jobs) != 1:
            raise ValueError(
                f"trace mixes jobs {sorted(jobs)}; filter to one application"
            )
        self.name = name
        self.preserve_think_time = preserve_think_time
        self._by_rank: dict[int, list[IORecord]] = defaultdict(list)
        for rec in records:
            self._by_rank[rec.rank].append(rec)
        for rank_records in self._by_rank.values():
            rank_records.sort(key=lambda r: r.op_id)
        self._ranks = sorted(self._by_rank)

    @property
    def ranks(self) -> int:
        return len(self._ranks)

    def prepare(self, cluster: Cluster, rng: np.random.Generator) -> None:
        """Stage every file the trace reads or writes."""
        sizes: dict[str, int] = {}
        for records in self._by_rank.values():
            for rec in records:
                if rec.op.is_data:
                    end = rec.offset + rec.size
                    sizes[rec.path] = max(sizes.get(rec.path, 0), end)
        for path, size in sorted(sizes.items()):
            if path not in cluster.fs:
                cluster.fs.ensure(path, max(1, size))

    def rank_body(self, session: ClientSession, rank: int,
                  rng: np.random.Generator, instance: int = 0):
        records = self._by_rank[self._ranks[rank % len(self._ranks)]]
        t0 = records[0].start
        env = session.env
        replay_start = env.now
        for rec in records:
            if self.preserve_think_time:
                target = replay_start + (rec.start - t0)
                if target > env.now:
                    yield env.timeout(target - env.now)
            yield from self._issue(session, rec)

    @staticmethod
    def _issue(session: ClientSession, rec: IORecord):
        if rec.op is OpType.READ:
            yield from session.read(rec.path, rec.offset, max(1, rec.size))
        elif rec.op is OpType.WRITE:
            yield from session.write(rec.path, rec.offset, max(1, rec.size))
        elif rec.op is OpType.CREATE:
            yield from session.create(rec.path)
        elif rec.op is OpType.OPEN:
            yield from session.open(rec.path)
        elif rec.op is OpType.CLOSE:
            yield from session.close(rec.path)
        elif rec.op is OpType.STAT:
            yield from session.stat(rec.path)
        elif rec.op is OpType.UNLINK:
            yield from session.unlink(rec.path)
        elif rec.op is OpType.MKDIR:
            yield from session.mkdir(rec.path)
        else:  # pragma: no cover - OpType is closed
            raise ValueError(f"cannot replay op {rec.op}")
