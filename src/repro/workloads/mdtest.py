"""MDTest-like metadata workloads: the IO500 ``mdtest`` tasks.

* **easy** — each rank operates on 0-byte files inside its own private
  directory: pure MDS load that parallelises across service threads.
* **hard** — every rank operates on files in ONE shared directory, and
  each file carries a 3901-byte data payload written to / read from the
  OSTs. The shared-directory lock serialises creates, and the small data
  writes couple this task to OST cache/disk state — which is why the
  paper's Table I shows ``mdt-hard-write`` crushed (26x/41x) by bulk
  data-write interference while ``mdt-easy-write`` is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.client import ClientSession
from repro.sim.cluster import Cluster
from repro.workloads.base import Workload

__all__ = ["MDTestConfig", "MDTestWorkload", "MDTEST_HARD_BYTES"]

#: mdtest-hard's file payload size (3901 B in the official IO500 config).
MDTEST_HARD_BYTES = 3901


@dataclass(frozen=True)
class MDTestConfig:
    """Shape of one MDTest run."""

    mode: str  # "easy" | "hard"
    access: str  # "read" | "write"
    ranks: int = 4
    files_per_rank: int = 64

    def __post_init__(self) -> None:
        if self.mode not in ("easy", "hard"):
            raise ValueError(f"mode must be 'easy' or 'hard', got {self.mode!r}")
        if self.access not in ("read", "write"):
            raise ValueError(f"access must be 'read' or 'write', got {self.access!r}")
        if self.ranks < 1 or self.files_per_rank < 1:
            raise ValueError("ranks and files_per_rank must be >= 1")

    @property
    def task_name(self) -> str:
        return f"mdt-{self.mode}-{self.access}"


class MDTestWorkload(Workload):
    """A single MDTest instance."""

    def __init__(self, config: MDTestConfig, name: str | None = None) -> None:
        self.config = config
        self.name = name or config.task_name

    @property
    def ranks(self) -> int:
        return self.config.ranks

    def _dir(self, rank: int, instance: int) -> str:
        if self.config.mode == "easy":
            return f"/{self.name}/it{instance}/rank{rank}"
        return f"/{self.name}/it{instance}/shared"

    def _input_dir(self, rank: int) -> str:
        if self.config.mode == "easy":
            return f"/{self.name}/input/rank{rank}"
        return f"/{self.name}/input/shared"

    def _file(self, base: str, rank: int, i: int) -> str:
        return f"{base}/f.{rank}.{i}"

    def prepare(self, cluster: Cluster, rng: np.random.Generator) -> None:
        cfg = self.config
        if cfg.access != "read":
            return
        size = MDTEST_HARD_BYTES if cfg.mode == "hard" else 0
        for rank in range(cfg.ranks):
            base = self._input_dir(rank)
            for i in range(cfg.files_per_rank):
                f = cluster.fs.ensure(self._file(base, rank, i), max(size, 1))
                f.size = size
                if size > 0:
                    # In IO500 the hard-read phase directly follows the
                    # hard-write phase: these tiny files are still
                    # server-cache resident (the paper's Table I shows
                    # mdt-hard-read ~untouched by OST data noise).
                    for ost_idx, obj, obj_off, nbytes in f.layout.map_extent(0, size):
                        cluster.osts[ost_idx].cache.prefill(obj, obj_off, nbytes)

    def rank_body(self, session: ClientSession, rank: int,
                  rng: np.random.Generator, instance: int = 0):
        cfg = self.config
        if cfg.access == "write":
            base = self._dir(rank, instance)
            for i in range(cfg.files_per_rank):
                path = self._file(base, rank, i)
                yield from session.create(path, stripe_count=1)
                if cfg.mode == "hard":
                    yield from session.write(path, 0, MDTEST_HARD_BYTES)
                yield from session.close(path)
        else:
            base = self._input_dir(rank)
            for i in range(cfg.files_per_rank):
                path = self._file(base, rank, i)
                yield from session.open(path)
                if cfg.mode == "hard":
                    yield from session.read(path, 0, MDTEST_HARD_BYTES)
                yield from session.stat(path)
                yield from session.close(path)
