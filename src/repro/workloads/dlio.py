"""DLIO-like deep-learning I/O emulation (Unet3d and BERT profiles).

DLIO replays the I/O behaviour of DL training: epochs of sample reads
interleaved with compute, plus periodic checkpoint writes. The paper uses
two configurations:

* **unet3d** — file-per-sample dataset, one large sample read per step in
  shuffled order, sizeable compute between steps, checkpoints every epoch;
* **bert** — a few large packed record files read sequentially in small
  chunks, short compute between batches, rare large checkpoints.

Compute phases make most windows interference-free, matching the paper's
DLIO class balance (3.7k positive vs 14.7k negative samples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import KIB, MIB
from repro.sim.client import ClientSession
from repro.sim.cluster import Cluster
from repro.workloads.base import Workload

__all__ = ["DLIOConfig", "DLIOWorkload"]


@dataclass(frozen=True)
class DLIOConfig:
    """Shape of one DLIO run."""

    model: str  # "unet3d" | "bert"
    ranks: int = 4
    epochs: int = 2
    steps_per_epoch: int = 16
    #: unet3d: size of each sample file; bert: size of each packed record file.
    sample_bytes: int = 4 * MIB
    #: bert reads this much per step from the packed file.
    batch_read_bytes: int = 512 * KIB
    #: mean compute time between steps (seconds).
    compute_time: float = 0.05
    checkpoint_bytes: int = 8 * MIB

    def __post_init__(self) -> None:
        if self.model not in ("unet3d", "bert"):
            raise ValueError(f"model must be 'unet3d' or 'bert', got {self.model!r}")
        if min(self.ranks, self.epochs, self.steps_per_epoch) < 1:
            raise ValueError("ranks, epochs and steps_per_epoch must be >= 1")

    @property
    def task_name(self) -> str:
        return f"dlio-{self.model}"


class DLIOWorkload(Workload):
    """One DLIO training-emulation instance."""

    def __init__(self, config: DLIOConfig, name: str | None = None) -> None:
        self.config = config
        self.name = name or config.task_name

    @property
    def ranks(self) -> int:
        return self.config.ranks

    @property
    def _n_samples(self) -> int:
        # Enough distinct samples that shuffled epochs revisit data rarely.
        return self.config.ranks * self.config.steps_per_epoch

    def _sample_path(self, i: int) -> str:
        return f"/{self.name}/data/sample{i}.npz"

    def _packed_path(self, i: int) -> str:
        return f"/{self.name}/data/part{i}.tfrecord"

    @property
    def _n_packed(self) -> int:
        return max(1, min(4, self.config.ranks))

    def prepare(self, cluster: Cluster, rng: np.random.Generator) -> None:
        cfg = self.config
        if cfg.model == "unet3d":
            for i in range(self._n_samples):
                cluster.fs.ensure(self._sample_path(i), cfg.sample_bytes)
        else:
            steps = cfg.steps_per_epoch * cfg.ranks
            packed_size = max(
                cfg.sample_bytes, steps * cfg.batch_read_bytes // self._n_packed
            )
            for i in range(self._n_packed):
                cluster.fs.ensure(self._packed_path(i), packed_size, stripe_count=-1)

    def rank_body(self, session: ClientSession, rank: int,
                  rng: np.random.Generator, instance: int = 0):
        if self.config.model == "unet3d":
            yield from self._unet3d_body(session, rank, rng, instance)
        else:
            yield from self._bert_body(session, rank, rng, instance)

    def _compute(self, session: ClientSession, rng: np.random.Generator):
        # Log-normal-ish jitter around the configured mean compute time.
        t = self.config.compute_time * float(rng.uniform(0.7, 1.3))
        yield session.env.timeout(t)

    def _checkpoint(self, session: ClientSession, rank: int, instance: int,
                    epoch: int):
        cfg = self.config
        path = f"/{self.name}/it{instance}/ckpt{epoch}/rank{rank}.pt"
        yield from session.create(path, stripe_count=1)
        offset = 0
        while offset < cfg.checkpoint_bytes:
            size = min(1 * MIB, cfg.checkpoint_bytes - offset)
            yield from session.write(path, offset, size)
            offset += size
        yield from session.close(path)

    def _unet3d_body(self, session: ClientSession, rank: int,
                     rng: np.random.Generator, instance: int):
        cfg = self.config
        for epoch in range(cfg.epochs):
            order = rng.permutation(self._n_samples)
            for step in range(cfg.steps_per_epoch):
                sample = int(order[(rank * cfg.steps_per_epoch + step) % self._n_samples])
                path = self._sample_path(sample)
                yield from session.open(path)
                yield from session.read(path, 0, cfg.sample_bytes)
                yield from session.close(path)
                yield from self._compute(session, rng)
            if rank == 0:
                yield from self._checkpoint(session, rank, instance, epoch)

    def _bert_body(self, session: ClientSession, rank: int,
                   rng: np.random.Generator, instance: int):
        cfg = self.config
        part = self._packed_path(rank % self._n_packed)
        part_size = session.node.cluster.fs.lookup(part).size
        yield from session.open(part)
        for epoch in range(cfg.epochs):
            offset = (rank * 7919 * KIB) % max(1, part_size - cfg.batch_read_bytes)
            for step in range(cfg.steps_per_epoch):
                yield from session.read(part, offset, cfg.batch_read_bytes)
                offset = (offset + cfg.batch_read_bytes) % max(
                    1, part_size - cfg.batch_read_bytes
                )
                yield from self._compute(session, rng)
            if rank == 0 and epoch == cfg.epochs - 1:
                yield from self._checkpoint(session, rank, instance, epoch)
        yield from session.close(part)
