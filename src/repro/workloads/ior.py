"""IOR-like data workloads: the IO500 ``ior-easy`` and ``ior-hard`` tasks.

* **easy** — file-per-process, large aligned sequential transfers, one
  stripe per file (IO500's bandwidth-friendly configuration).
* **hard** — one shared file striped over all OSTs; every rank issues
  small *unaligned* 47008-byte transfers interleaved rank-strided across
  the file, IO500's worst-case pattern.

Both exist in read and write variants; read variants stage their input
files in :meth:`prepare` (the measured IO500 read phases read data written
by a previous phase).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import MIB
from repro.sim.client import ClientSession
from repro.sim.cluster import Cluster
from repro.workloads.base import Workload

__all__ = ["IorConfig", "IorWorkload", "IOR_HARD_XFER"]

#: IOR's infamous unaligned transfer size used by the io500 hard tests.
IOR_HARD_XFER = 47008


@dataclass(frozen=True)
class IorConfig:
    """Shape of one IOR run."""

    mode: str  # "easy" | "hard"
    access: str  # "read" | "write"
    ranks: int = 4
    #: easy: bytes written/read per rank. hard: per-rank share of the file.
    bytes_per_rank: int = 32 * MIB
    #: transfer size for easy mode (hard mode is fixed at 47008 B).
    transfer_size: int = 1 * MIB
    #: read variants stage ``read_rounds`` times the per-iteration volume
    #: and read a different slice per instance iteration. This keeps
    #: looping read *interference* cache-cold (a real IO500 read phase
    #: scans far more data than a server caches), instead of degenerating
    #: into memory-speed re-reads of one warm file.
    read_rounds: int = 8

    def __post_init__(self) -> None:
        if self.mode not in ("easy", "hard"):
            raise ValueError(f"mode must be 'easy' or 'hard', got {self.mode!r}")
        if self.access not in ("read", "write"):
            raise ValueError(f"access must be 'read' or 'write', got {self.access!r}")
        if self.ranks < 1 or self.bytes_per_rank < 1 or self.transfer_size < 1:
            raise ValueError("ranks, bytes_per_rank and transfer_size must be >= 1")
        if self.read_rounds < 1:
            raise ValueError("read_rounds must be >= 1")

    @property
    def task_name(self) -> str:
        return f"ior-{self.mode}-{self.access}"


class IorWorkload(Workload):
    """A single IOR instance."""

    def __init__(self, config: IorConfig, name: str | None = None) -> None:
        self.config = config
        self.name = name or config.task_name

    @property
    def ranks(self) -> int:
        return self.config.ranks

    # -- namespace helpers ------------------------------------------------------

    def _easy_path(self, rank: int, instance: int) -> str:
        return f"/{self.name}/it{instance}/rank{rank}.dat"

    def _easy_input_path(self, rank: int) -> str:
        return f"/{self.name}/input/rank{rank}.dat"

    def _hard_path(self, instance: int) -> str:
        return f"/{self.name}/it{instance}/shared.dat"

    def _hard_input_path(self) -> str:
        return f"/{self.name}/input/shared.dat"

    @property
    def _hard_ops_per_rank(self) -> int:
        return max(1, self.config.bytes_per_rank // IOR_HARD_XFER)

    # -- staging -------------------------------------------------------------------

    def prepare(self, cluster: Cluster, rng: np.random.Generator) -> None:
        cfg = self.config
        if cfg.access != "read":
            return
        if cfg.mode == "easy":
            for rank in range(cfg.ranks):
                cluster.fs.ensure(self._easy_input_path(rank),
                                  cfg.bytes_per_rank * cfg.read_rounds)
        else:
            total = self._hard_ops_per_rank * cfg.ranks * IOR_HARD_XFER
            cluster.fs.ensure(self._hard_input_path(), total * cfg.read_rounds,
                              stripe_count=-1)

    # -- bodies ---------------------------------------------------------------------

    def rank_body(self, session: ClientSession, rank: int,
                  rng: np.random.Generator, instance: int = 0):
        if self.config.mode == "easy":
            yield from self._easy_body(session, rank, instance)
        else:
            yield from self._hard_body(session, rank, instance)

    def _easy_body(self, session: ClientSession, rank: int, instance: int):
        cfg = self.config
        if cfg.access == "write":
            path = self._easy_path(rank, instance)
            yield from session.create(path, stripe_count=1)
            offset = 0
            while offset < cfg.bytes_per_rank:
                size = min(cfg.transfer_size, cfg.bytes_per_rank - offset)
                yield from session.write(path, offset, size)
                offset += size
            yield from session.close(path)
        else:
            path = self._easy_input_path(rank)
            base = (instance % cfg.read_rounds) * cfg.bytes_per_rank
            yield from session.open(path)
            offset = 0
            while offset < cfg.bytes_per_rank:
                size = min(cfg.transfer_size, cfg.bytes_per_rank - offset)
                yield from session.read(path, base + offset, size)
                offset += size
            yield from session.close(path)

    def _hard_body(self, session: ClientSession, rank: int, instance: int):
        cfg = self.config
        nops = self._hard_ops_per_rank
        if cfg.access == "write":
            path = self._hard_path(instance)
            yield from session.create(path, stripe_count=-1)
            for i in range(nops):
                offset = (i * cfg.ranks + rank) * IOR_HARD_XFER
                yield from session.write(path, offset, IOR_HARD_XFER)
            yield from session.close(path)
        else:
            path = self._hard_input_path()
            base = (instance % cfg.read_rounds) * nops * cfg.ranks * IOR_HARD_XFER
            yield from session.open(path)
            for i in range(nops):
                offset = base + (i * cfg.ranks + rank) * IOR_HARD_XFER
                yield from session.read(path, offset, IOR_HARD_XFER)
            yield from session.close(path)
