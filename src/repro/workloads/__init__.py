"""Workload generators: IO500 tasks, DLIO models and HPC application models.

Every workload implements :class:`repro.workloads.base.Workload` and is a
*pure access-pattern generator*: all timing comes from the simulator, all
randomness from the experiment seed, so re-running the same (workload,
seed) on any cluster state yields the identical operation sequence — the
property the labelling pipeline needs.
"""

from repro.workloads.base import Workload, WorkloadHandle, launch, launch_interference
from repro.workloads.ior import IorConfig, IorWorkload
from repro.workloads.mdtest import MDTestConfig, MDTestWorkload
from repro.workloads.io500 import IO500_TASKS, make_io500_task
from repro.workloads.dlio import DLIOConfig, DLIOWorkload
from repro.workloads.apps import AmrexWorkload, EnzoWorkload, OpenPMDWorkload

__all__ = [
    "Workload",
    "WorkloadHandle",
    "launch",
    "launch_interference",
    "IorConfig",
    "IorWorkload",
    "MDTestConfig",
    "MDTestWorkload",
    "IO500_TASKS",
    "make_io500_task",
    "DLIOConfig",
    "DLIOWorkload",
    "AmrexWorkload",
    "EnzoWorkload",
    "OpenPMDWorkload",
]
