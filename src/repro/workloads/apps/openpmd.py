"""OpenPMD series-writing I/O model.

OpenPMD structures scientific output as a *series* of iterations, each
holding many small records (meshes, particle patches) with rich
attributes. The practical I/O signature is metadata-heavy: many file
creates, stats and opens with small data payloads per record — the
paper's representative metadata-intensive application (Figure 5 right,
where the model performs worst due to few collected samples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import KIB
from repro.sim.client import ClientSession
from repro.sim.cluster import Cluster
from repro.workloads.base import Workload

__all__ = ["OpenPMDConfig", "OpenPMDWorkload"]


@dataclass(frozen=True)
class OpenPMDConfig:
    """Shape of one OpenPMD series-writing run."""

    ranks: int = 4
    iterations: int = 8
    records_per_iteration: int = 12
    record_bytes: int = 64 * KIB
    compute_time: float = 0.05

    def __post_init__(self) -> None:
        if min(self.ranks, self.iterations, self.records_per_iteration) < 1:
            raise ValueError("ranks, iterations and records must be >= 1")


class OpenPMDWorkload(Workload):
    """One OpenPMD series write: iteration dirs of many small records."""

    def __init__(self, config: OpenPMDConfig | None = None,
                 name: str = "openpmd") -> None:
        self.config = config or OpenPMDConfig()
        self.name = name

    @property
    def ranks(self) -> int:
        return self.config.ranks

    def prepare(self, cluster: Cluster, rng: np.random.Generator) -> None:
        return  # pure output workload

    def rank_body(self, session: ClientSession, rank: int,
                  rng: np.random.Generator, instance: int = 0):
        cfg = self.config
        series_dir = f"/{self.name}/it{instance}/series"
        if rank == 0:
            yield from session.mkdir(series_dir)
        for it in range(cfg.iterations):
            yield session.env.timeout(cfg.compute_time * float(rng.uniform(0.8, 1.2)))
            it_dir = f"{series_dir}/i{it:06d}"
            if rank == 0:
                yield from session.mkdir(it_dir)
            else:
                yield session.env.timeout(5e-4)
                yield from session.stat(series_dir)
            for r in range(cfg.records_per_iteration):
                path = f"{it_dir}/record.{rank}.{r}"
                yield from session.create(path, stripe_count=1)
                yield from session.write(path, 0, cfg.record_bytes)
                # Attribute updates: stat + tiny appended payload.
                yield from session.stat(path)
                yield from session.write(path, cfg.record_bytes, 4 * KIB)
                yield from session.close(path)
            # Series index refresh.
            yield from session.stat(it_dir)
