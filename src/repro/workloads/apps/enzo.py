"""Enzo collapse-test I/O model.

Enzo (adaptive mesh refinement astrophysics) running the paper's
non-cosmological collapse test alternates short compute cycles with
checkpoint dumps of the AMR hierarchy: every dump opens/creates a
hierarchy of per-grid files, writes grid blocks of varying size, reads
back small boundary/restart data, and stats files while building the
hierarchy metadata — the paper observes "read, write, open, close and
stats within the first 50 seconds" (Figure 1). Grid sizes vary with
refinement level, which is what makes per-operation interference impact
non-uniform within a single application run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import KIB, MIB
from repro.sim.client import ClientSession
from repro.sim.cluster import Cluster
from repro.workloads.base import Workload

__all__ = ["EnzoConfig", "EnzoWorkload"]


@dataclass(frozen=True)
class EnzoConfig:
    """Shape of one Enzo collapse-test run."""

    ranks: int = 4
    cycles: int = 6
    #: AMR grids written per rank per dump; sizes vary by level.
    grids_per_rank: int = 4
    base_grid_bytes: int = 4 * MIB
    #: compute time between dump cycles, seconds.
    compute_time: float = 0.2

    def __post_init__(self) -> None:
        if min(self.ranks, self.cycles, self.grids_per_rank) < 1:
            raise ValueError("ranks, cycles and grids_per_rank must be >= 1")


class EnzoWorkload(Workload):
    """One Enzo run: compute cycles interleaved with hierarchy dumps."""

    def __init__(self, config: EnzoConfig | None = None,
                 name: str = "enzo") -> None:
        self.config = config or EnzoConfig()
        self.name = name

    @property
    def ranks(self) -> int:
        return self.config.ranks

    def _restart_path(self, rank: int) -> str:
        return f"/{self.name}/input/restart{rank}.cpu"

    def prepare(self, cluster: Cluster, rng: np.random.Generator) -> None:
        # Initial conditions read at startup.
        for rank in range(self.config.ranks):
            cluster.fs.ensure(self._restart_path(rank), 2 * MIB)
        # Pre-register the boundary-exchange read targets of the measured
        # instance so the op sequence never depends on neighbour timing
        # (determinism requirement for baseline/interference matching).
        for cycle in range(self.config.cycles):
            for rank in range(self.config.ranks):
                cluster.fs.ensure(
                    f"/{self.name}/it0/DD{cycle:04d}/grid.r{rank}.g0", 64 * KIB
                )

    def _grid_bytes(self, level: int) -> int:
        # Refined grids are smaller: level l grid is base / 2^l, >= 64 KiB.
        return max(64 * KIB, self.config.base_grid_bytes >> level)

    def rank_body(self, session: ClientSession, rank: int,
                  rng: np.random.Generator, instance: int = 0):
        cfg = self.config
        # Startup: read initial conditions / restart data.
        restart = self._restart_path(rank)
        yield from session.open(restart)
        yield from session.read(restart, 0, 2 * MIB)
        yield from session.close(restart)

        for cycle in range(cfg.cycles):
            yield session.env.timeout(cfg.compute_time * float(rng.uniform(0.8, 1.2)))
            dump_dir = f"/{self.name}/it{instance}/DD{cycle:04d}"
            # Hierarchy metadata file (rank 0 writes it, everyone stats it).
            hierarchy = f"{dump_dir}/hierarchy"
            if rank == 0:
                yield from session.create(hierarchy, stripe_count=1)
                yield from session.write(hierarchy, 0, 128 * KIB)
            else:
                yield session.env.timeout(1e-3)
                yield from session.stat(hierarchy)
            # Per-grid dumps at mixed refinement levels.
            for g in range(cfg.grids_per_rank):
                level = int(rng.integers(0, 3))
                path = f"{dump_dir}/grid.r{rank}.g{g}"
                size = self._grid_bytes(level)
                yield from session.create(path, stripe_count=1)
                # One HDF5-style write per grid; the client splits it into
                # RPCs internally. Op sizes therefore vary with refinement
                # level, which drives the non-uniform impact in Figure 1.
                yield from session.write(path, 0, size)
                yield from session.close(path)
            # Boundary exchange: read back a neighbour's coarse data. Only
            # the measured instance (0) has these targets pre-registered;
            # looping interference instances skip the exchange.
            if instance == 0:
                neighbour = (rank + 1) % cfg.ranks
                peer = f"{dump_dir}/grid.r{neighbour}.g0"
                yield from session.open(peer)
                yield from session.read(peer, 0, 64 * KIB)
                yield from session.close(peer)
            yield from session.stat(hierarchy)
