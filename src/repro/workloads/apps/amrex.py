"""AMReX block-structured AMR I/O model.

AMReX applications write *plotfiles*: per step, each rank streams its
distribution of FABs (fortran array boxes) into a small number of level
files with large sequential appends, plus a header written by rank 0.
Compared to Enzo the op mix is more write-heavy with larger transfers,
making it the paper's second data-intensive application (Figure 5 left).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import KIB, MIB
from repro.sim.client import ClientSession
from repro.sim.cluster import Cluster
from repro.workloads.base import Workload

__all__ = ["AmrexConfig", "AmrexWorkload"]


@dataclass(frozen=True)
class AmrexConfig:
    """Shape of one AMReX run."""

    ranks: int = 4
    steps: int = 4
    levels: int = 2
    #: bytes of FAB data per rank per level per plotfile.
    fab_bytes: int = 8 * MIB
    compute_time: float = 0.15

    def __post_init__(self) -> None:
        if min(self.ranks, self.steps, self.levels) < 1:
            raise ValueError("ranks, steps and levels must be >= 1")


class AmrexWorkload(Workload):
    """One AMReX run: compute steps interleaved with plotfile dumps."""

    def __init__(self, config: AmrexConfig | None = None,
                 name: str = "amrex") -> None:
        self.config = config or AmrexConfig()
        self.name = name

    @property
    def ranks(self) -> int:
        return self.config.ranks

    def prepare(self, cluster: Cluster, rng: np.random.Generator) -> None:
        # AMReX runs restart from a checkpoint; stage a small one.
        for rank in range(self.config.ranks):
            cluster.fs.ensure(f"/{self.name}/chk00000/rank{rank}", 1 * MIB)

    def rank_body(self, session: ClientSession, rank: int,
                  rng: np.random.Generator, instance: int = 0):
        cfg = self.config
        # Restart read.
        chk = f"/{self.name}/chk00000/rank{rank}"
        yield from session.open(chk)
        yield from session.read(chk, 0, 1 * MIB)
        yield from session.close(chk)

        for step in range(cfg.steps):
            yield session.env.timeout(cfg.compute_time * float(rng.uniform(0.9, 1.1)))
            plt = f"/{self.name}/it{instance}/plt{step:05d}"
            if rank == 0:
                yield from session.mkdir(plt)
                header = f"{plt}/Header"
                yield from session.create(header, stripe_count=1)
                yield from session.write(header, 0, 16 * KIB)
                yield from session.close(header)
            else:
                yield session.env.timeout(1e-3)
            for level in range(cfg.levels):
                # Ranks append into a shared per-level cell file at
                # rank-strided offsets (AMReX's NFiles-coalesced output).
                path = f"{plt}/Level_{level}/Cell_D_{rank % 2:05d}"
                yield from session.create(path, stripe_count=2)
                base = (rank // 2) * cfg.fab_bytes
                offset = 0
                while offset < cfg.fab_bytes:
                    piece = min(1 * MIB, cfg.fab_bytes - offset)
                    yield from session.write(path, base + offset, piece)
                    offset += piece
                yield from session.close(path)
            yield from session.stat(f"{plt}/Header" if rank != 0 else plt)
