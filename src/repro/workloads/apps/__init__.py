"""Phase-structured models of the paper's three real HPC applications.

These replicate the *I/O behaviour* (operation mix, sizes, cadence) of
AMReX, Enzo and OpenPMD as the paper characterises them: AMReX and Enzo
are data-intensive (checkpoint/plotfile-dominated), OpenPMD is
metadata-intensive. Physics is replaced by compute delays.
"""

from repro.workloads.apps.amrex import AmrexConfig, AmrexWorkload
from repro.workloads.apps.enzo import EnzoConfig, EnzoWorkload
from repro.workloads.apps.openpmd import OpenPMDConfig, OpenPMDWorkload

__all__ = [
    "AmrexConfig",
    "AmrexWorkload",
    "EnzoConfig",
    "EnzoWorkload",
    "OpenPMDConfig",
    "OpenPMDWorkload",
]
