"""Workload abstraction and launch helpers.

A :class:`Workload` is a deterministic generator of I/O operations: given
a session (which ties ops to a job/rank and records the trace) and a
seeded RNG, :meth:`Workload.rank_body` yields simulator events. The same
(workload, seed) pair always issues the same operation sequence — only
completion *times* depend on cluster contention. This mirrors the paper's
setup where a *target workload* runs identically with and without
*interference workloads* (§III-D).

Launching:

* :func:`launch` starts one finite instance and returns a handle whose
  ``done`` event fires when every rank finished.
* :func:`launch_interference` starts an instance that restarts itself
  forever (the paper keeps 3 concurrent interference instances active for
  the entire measurement); it is simply abandoned when the measured run
  ends.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import derive_rng
from repro.sim.cluster import Cluster
from repro.sim.client import ClientSession
from repro.sim.engine import AllOf, Process

__all__ = ["Workload", "WorkloadHandle", "launch", "launch_interference"]


class Workload(abc.ABC):
    """Base class for all workload generators."""

    #: Job name used to tag trace records; instance-specific.
    name: str

    @property
    @abc.abstractmethod
    def ranks(self) -> int:
        """Number of MPI-style ranks this workload runs with."""

    def prepare(self, cluster: Cluster, rng: np.random.Generator) -> None:
        """Create pre-existing namespace state (input files for read
        workloads). Costs no simulated time, like data staged before the
        measured run."""

    @abc.abstractmethod
    def rank_body(self, session: ClientSession, rank: int,
                  rng: np.random.Generator, instance: int = 0):
        """Generator issuing this rank's operations via ``yield from``.

        ``instance`` distinguishes repeated executions of the same rank
        when the workload runs as looping interference: write workloads
        should namespace their output by it so each iteration produces
        fresh (cache-cold) data, while read workloads re-read the files
        staged by :meth:`prepare`.
        """


@dataclass
class WorkloadHandle:
    """A launched workload instance."""

    workload: Workload
    processes: list[Process]
    done: object = field(default=None)  # AllOf event over rank processes


def _node_for_rank(rank: int, nodes: list[int]) -> int:
    return nodes[rank % len(nodes)]


def launch(cluster: Cluster, workload: Workload, nodes: list[int],
           seed: int) -> WorkloadHandle:
    """Start one finite instance of ``workload`` on the given nodes.

    Ranks are assigned to ``nodes`` round-robin. Returns a handle whose
    ``done`` event fires when all ranks complete.
    """
    if not nodes:
        raise ValueError("launch needs at least one node")
    workload.prepare(cluster, derive_rng(seed, workload.name, "prepare"))
    procs = []
    for rank in range(workload.ranks):
        session = cluster.session(workload.name, rank, _node_for_rank(rank, nodes))
        rng = derive_rng(seed, workload.name, rank)
        procs.append(cluster.env.process(workload.rank_body(session, rank, rng)))
    return WorkloadHandle(workload, procs, AllOf(cluster.env, procs))


def launch_interference(cluster: Cluster, workload: Workload, nodes: list[int],
                        seed: int, record: bool = True) -> WorkloadHandle:
    """Start ``workload`` restarting itself indefinitely on ``nodes``.

    Each rank loops its body forever with a fresh RNG stream per
    iteration; the processes never terminate and are abandoned when the
    measured run's ``env.run(until=...)`` returns. With ``record=False``
    the noise ops are not traced (their records are never consumed, and
    long noise loops otherwise dominate trace memory).
    """
    if not nodes:
        raise ValueError("launch_interference needs at least one node")
    workload.prepare(cluster, derive_rng(seed, workload.name, "prepare"))
    from repro.sim.client import NullCollector

    collector = cluster.collector if record else NullCollector()

    def forever(rank: int, node: int):
        iteration = 0
        while True:
            session = cluster.session(workload.name, rank, node)
            session.collector = collector
            rng = derive_rng(seed, workload.name, rank, iteration)
            yield from workload.rank_body(session, rank, rng, instance=iteration)
            iteration += 1

    procs = [
        cluster.env.process(forever(rank, _node_for_rank(rank, nodes)))
        for rank in range(workload.ranks)
    ]
    return WorkloadHandle(workload, procs, None)
