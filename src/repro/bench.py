"""Performance baselines: the ``repro bench`` subcommand.

Six committed baselines (regenerated with ``python -m repro bench``,
selectable via ``--only SUITE`` (repeatable) or the positional name,
and compared non-gatingly in CI against the checked-in
``BENCH_engine.json`` / ``BENCH_sweep.json`` / ``BENCH_train.json`` /
``BENCH_shard.json`` / ``BENCH_serve.json`` / ``BENCH_dataset.json``):

* **engine** — microbenchmarks of the discrete-event kernel: raw timeout
  churn through ``Environment.run()``, plus a request-path comparison
  driving the same windowed RPC pattern once through per-request
  generator ``Process``es (the event backend's shape, one process per
  striped RPC) and once through the batched callback chain
  (``after``/``try_acquire``/``CountEvent`` — the batch backend's
  shape). The ratio isolates the per-request machinery the batch
  backend eliminates, free of the shared network/disk model.

* **sweep** — the end-to-end dataset-generation grid, run serial with
  the event backend (the pre-batch baseline), serial with
  ``--sim-backend batch``, then cold (fresh run cache) and warm through
  the parallel executor with the batch backend. All four passes must
  produce bit-identical window banks; the cross-backend identity is the
  equivalence contract of ``repro.sim.batch`` holding on the full grid.

* **train** — the training stack: a seeds x restarts grid trained by
  the serial restart loop, then cold (fresh model cache) and warm
  through :class:`repro.parallel.TrainExecutor` — the warm pass must
  execute zero trainings — plus the per-window inference latency of the
  deployed (normalizer-fused, buffer-reusing) fast path against the
  unfused predictor. Serial, parallel and cached models must be
  bit-identical; fused predictions class-identical.

* **shard** — the sharded executor (:mod:`repro.sim.shard`): one run's
  events/sec at shard counts 1/2/4 under both window policies
  (byte-identical output asserted at every count and policy, digests
  recorded per row), the fixed→adaptive coordinator-window reduction
  (deterministic; gated by ``check_regression.py``), plus a
  cluster-size curve from 4 to 64 OSTs at one shard. Wall-clock
  scaling needs physical cores; the committed baseline embeds
  ``environment.cpu_count`` so those numbers are read in context.

* **serve** — the multi-tenant prediction service (:mod:`repro.serve`):
  windows/sec and p50/p99 request latency against growing concurrent
  stream counts, clean and under a fixed chaos plan (with shed/degraded
  tenant rates). Demonstrates micro-batching amortising the fused
  forward pass across tenants.

* **dataset** — the columnar :class:`repro.data.DatasetStore` against
  the in-memory ETL path: cold build vs warm rebuild (zero simulations,
  zero shard reads, bit-identical ``content_digest``), one-pair warm
  appends into stores of different ingested sizes (walls must match),
  and a >=100k-window training run memmap-backed vs fully in memory,
  recording the peak-RSS contrast with bit-identical parameters.

The end-to-end speedup is Amdahl-bounded: the fluid network, block
device and page cache perform identical work at identical simulated
instants on both backends (that *is* the equivalence contract), so only
the per-request client machinery — measured in isolation by the engine
request-path bench — shrinks. See DESIGN.md §9.

Every result embeds an ``environment`` block (numpy/python versions,
platform, cpu_count); ``benchmarks/check_regression.py`` warns — without
failing — when a baseline being compared was recorded on a different
environment, since wall-clock numbers only transfer between like
machines.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
import time
from typing import Any

import numpy as np

__all__ = ["bench_dataset", "bench_engine", "bench_environment",
           "bench_serve", "bench_shard", "bench_sweep", "bench_train",
           "main"]


def _peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux; the benchmark workers run in
    fresh spawn children, so the number is the worker's own peak, not
    the parent's.
    """
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def bench_environment() -> dict[str, Any]:
    """The machine/toolchain a benchmark ran on (embedded in results).

    Wall-clock baselines only transfer between like environments;
    recording this lets ``check_regression.py`` warn when a comparison
    crosses machines instead of silently flagging a phantom regression.
    """
    import platform

    from repro.obs.manifest import git_revision

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        # Commit provenance: lets check_regression.py distinguish "code
        # changed" from "machine changed" when wall numbers drift.
        "git_sha": git_revision(),
        # Peak RSS of the recording process: memory provenance for the
        # wall numbers.  check_regression.py compares it non-fatally and
        # excludes it from the environment-mismatch check.
        "peak_rss_bytes": _peak_rss_bytes(),
    }


# -- engine microbenchmarks ---------------------------------------------------


def _churn(n_processes: int, hops: int):
    """Timeout-relay workload; returns (events_fired, wall, order)."""
    from repro.sim.engine import Environment

    env = Environment()
    order: list[tuple[str, float]] = []
    rng = np.random.default_rng(11)
    delays = rng.integers(1, 7, size=(n_processes, hops)) * 0.125

    def proc(pid: int):
        for h in range(hops):
            yield env.timeout(float(delays[pid, h]))
        order.append((f"p{pid}", env.now))

    for pid in range(n_processes):
        env.process(proc(pid))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    return n_processes * hops, wall, order


_RPC_LATENCY = 200e-6
_SERVICE = 1e-3
_WINDOW = 8
_BURST = 64


def _requests_via_processes(n_requests: int) -> float:
    """The event backend's request shape: each op spawns one generator
    Process per piece (credit window, RPC latency, service), joined by an
    AllOf — the structure of ``ClientSession._data_op``."""
    from repro.sim.engine import AllOf, Environment
    from repro.sim.resources import Semaphore

    env = Environment()
    window = Semaphore(env, _WINDOW)

    def rpc():
        yield window.acquire()
        yield env.timeout(_RPC_LATENCY)
        yield env.timeout(_SERVICE)
        window.release()

    def op():
        yield AllOf(env, [env.process(rpc()) for _ in range(_BURST)])

    ops = [env.process(op()) for _ in range(n_requests // _BURST)]
    t0 = time.perf_counter()
    env.run(until=AllOf(env, ops))
    return time.perf_counter() - t0


def _requests_via_batch(n_requests: int) -> float:
    """The batch backend's request shape: ``try_acquire`` takes window
    credits inline, every immediately-granted piece of a burst shares a
    single RPC-latency timeout, queued pieces chain solo off their FIFO
    grant, and one CountEvent completes the lot — the structure of
    ``repro.sim.batch._DataBatch``."""
    from repro.sim.engine import CountEvent, Environment
    from repro.sim.resources import Semaphore

    env = Environment()
    window = Semaphore(env, _WINDOW)
    done = CountEvent(env, n_requests)

    def finish(_ev=None) -> None:
        window.release()
        done.complete()

    def serve_group(_ev, k: int) -> None:
        for _ in range(k):
            env.after(_SERVICE, finish)

    def solo_serve(_ev) -> None:
        env.after(_SERVICE, finish)

    def solo(_ev) -> None:
        env.after(_RPC_LATENCY, solo_serve)

    for _ in range(n_requests // _BURST):
        immediate = 0
        for _ in range(_BURST):
            if window.try_acquire():
                immediate += 1
            else:
                window.acquire().callbacks.append(solo)
        if immediate:
            env.after(_RPC_LATENCY,
                      lambda _ev, k=immediate: serve_group(_ev, k))
    t0 = time.perf_counter()
    env.run(until=done)
    return time.perf_counter() - t0


def bench_engine(processes: int = 2000, hops: int = 100,
                 requests: int = 100_096) -> dict[str, Any]:
    """Engine kernel + request-path microbenchmarks (see module doc)."""
    n1, wall1, order1 = _churn(processes, hops)
    n2, wall2, order2 = _churn(processes, hops)
    assert order1 == order2, "engine event order is not deterministic"
    wall = min(wall1, wall2)

    requests = (requests // _BURST) * _BURST  # whole bursts only
    proc_wall = min(_requests_via_processes(requests) for _ in range(2))
    batch_wall = min(_requests_via_batch(requests) for _ in range(2))

    return {
        "environment": bench_environment(),
        "processes": processes,
        "hops": hops,
        "timeout_events": n1,
        "wall_seconds": wall,
        "timeouts_per_second": n1 / wall,
        "deterministic": True,
        "request_path": {
            "requests": requests,
            "burst": _BURST,
            "window": _WINDOW,
            "process_seconds": proc_wall,
            "batch_seconds": batch_wall,
            "process_requests_per_second": requests / proc_wall,
            "batch_requests_per_second": requests / batch_wall,
            "batch_speedup": proc_wall / batch_wall,
        },
    }


# -- end-to-end sweep benchmark -----------------------------------------------


def bench_grid(sim_backend: str = "event"):
    """The benchmark's (target, scenario) grid and experiment config."""
    from repro.experiments.datagen import Scenario
    from repro.experiments.runner import (ExperimentConfig, InterferenceSpec,
                                          experiment_cluster)
    from repro.workloads.io500 import make_io500_task

    cluster = dataclasses.replace(experiment_cluster(), sim_backend=sim_backend)
    config = ExperimentConfig(cluster=cluster, window_size=0.25,
                              sample_interval=0.125, warmup=1.0, seed=0)
    targets = [
        make_io500_task("ior-easy-write", ranks=4, scale=2.5),
        make_io500_task("ior-easy-read", ranks=4, scale=2.5),
        make_io500_task("mdt-hard-write", ranks=4, scale=2.5),
    ]
    scenarios = [Scenario("quiet")]
    for level in (1, 2):
        scenarios.append(Scenario(
            f"io500-x{level}",
            (InterferenceSpec("ior-easy-write", instances=level, ranks=2,
                              scale=0.2),
             InterferenceSpec("ior-easy-read", instances=1, ranks=2,
                              scale=0.2)),
        ))
    return targets, scenarios, config


def bench_sweep(jobs: int | None = None) -> dict[str, Any]:
    """Serial event vs serial batch vs cold/warm parallel batch grid."""
    from repro.experiments.datagen import collect_windows
    from repro.parallel import RunCache, SweepExecutor

    jobs = jobs or min(4, os.cpu_count() or 1)
    targets_e, scenarios_e, config_e = bench_grid("event")
    n_pairs = len(targets_e) * len(scenarios_e)

    t0 = time.perf_counter()
    event_bank = collect_windows(targets_e, scenarios_e, config_e, n_jobs=1)
    serial_event_s = time.perf_counter() - t0

    targets_b, scenarios_b, config_b = bench_grid("batch")
    t0 = time.perf_counter()
    batch_bank = collect_windows(targets_b, scenarios_b, config_b, n_jobs=1)
    serial_batch_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        cold = SweepExecutor(n_jobs=jobs, cache=RunCache(tmp))
        t0 = time.perf_counter()
        cold_bank = collect_windows(targets_b, scenarios_b, config_b,
                                    executor=cold)
        cold_s = time.perf_counter() - t0

        warm = SweepExecutor(n_jobs=jobs, cache=RunCache(tmp))
        t0 = time.perf_counter()
        warm_bank = collect_windows(targets_b, scenarios_b, config_b,
                                    executor=warm)
        warm_s = time.perf_counter() - t0

        identical = (
            np.array_equal(event_bank.X, batch_bank.X)
            and np.array_equal(event_bank.levels, batch_bank.levels)
            and np.array_equal(batch_bank.X, cold_bank.X)
            and np.array_equal(batch_bank.levels, cold_bank.levels)
            and np.array_equal(batch_bank.X, warm_bank.X)
            and np.array_equal(batch_bank.levels, warm_bank.levels)
        )
        assert identical, "event/batch/parallel/warm banks differ"
        assert warm.runs_executed == 0, "warm cache still executed runs"

        return {
            "environment": bench_environment(),
            "grid": {"targets": len(targets_e), "scenarios": len(scenarios_e),
                     "pairs": n_pairs, "windows": len(event_bank)},
            "serial_event_seconds": serial_event_s,
            "serial_batch_seconds": serial_batch_s,
            "backend_speedup_serial": serial_event_s / serial_batch_s,
            "cold_batch_seconds": cold_s,
            "cold_improvement_vs_serial_event": serial_event_s / cold_s,
            "warm_seconds": warm_s,
            "speedup_warm": serial_event_s / warm_s if warm_s else None,
            "n_jobs": cold.n_jobs,
            "cpu_count": os.cpu_count(),
            "bit_identical": identical,
            "cold": cold.stats(),
            "warm": warm.stats(),
        }


# -- training-stack benchmark -------------------------------------------------


def bench_train_dataset(n: int = 240, n_servers: int = 7,
                        n_features: int = 10):
    """A deterministic synthetic window set with learnable structure.

    Synthetic rather than simulated so the benchmark isolates the
    training stack: same class balance and separability every run,
    no simulator wall time mixed into the numbers.
    """
    from repro.common.rng import derive_rng
    from repro.core.dataset import Dataset

    rng = derive_rng(0, "bench-train-dataset")
    X = rng.normal(size=(n, n_servers, n_features))
    y = (X[:, :, :3].mean(axis=(1, 2))
         + 0.3 * rng.normal(size=n) > 0).astype(int)
    X[y == 1, :, :3] += 0.5
    names = tuple(f"f{i}" for i in range(n_features))
    return Dataset(X, y, feature_names=names)


def bench_train(jobs: int | None = None) -> dict[str, Any]:
    """Serial restart loop vs cold/warm TrainExecutor + fused inference."""
    from repro.core.labeling import BINARY_THRESHOLDS
    from repro.core.nn.train import TrainConfig
    from repro.core.predictor import InterferencePredictor
    from repro.parallel import ModelCache, TrainExecutor, TrainJob

    jobs = jobs or min(2, os.cpu_count() or 1)
    seeds = (0, 1, 2, 3)
    restarts = 3
    dataset = bench_train_dataset()
    configs = {s: TrainConfig(epochs=40, patience=12, seed=s)
               for s in seeds}

    t0 = time.perf_counter()
    serial = [
        InterferencePredictor.train(dataset, BINARY_THRESHOLDS,
                                    config=configs[s], seed=s,
                                    restarts=restarts)
        for s in seeds
    ]
    serial_s = time.perf_counter() - t0

    job_list = [TrainJob(dataset, thresholds=BINARY_THRESHOLDS,
                         config=configs[s], seed=s, restarts=restarts)
                for s in seeds]
    with tempfile.TemporaryDirectory(prefix="bench-train-") as tmp:
        cold = TrainExecutor(n_jobs=jobs, cache=ModelCache(tmp))
        t0 = time.perf_counter()
        parallel = cold.train_predictors(job_list)
        cold_s = time.perf_counter() - t0

        warm_ex = TrainExecutor(n_jobs=jobs, cache=ModelCache(tmp))
        t0 = time.perf_counter()
        warm = warm_ex.train_predictors(job_list)
        warm_s = time.perf_counter() - t0
        assert warm_ex.trainings_executed == 0, \
            "warm model cache still executed trainings"

        def _same(p, q) -> bool:
            return (all(np.array_equal(a.value, b.value) for a, b in
                        zip(p.model.params(), q.model.params()))
                    and np.array_equal(p.predict_proba(dataset.X),
                                       q.predict_proba(dataset.X)))

        identical = (all(_same(p, q) for p, q in zip(serial, parallel))
                     and all(_same(p, q) for p, q in zip(serial, warm)))
        assert identical, "serial/parallel/cached models differ"

    # Inference fast path: per-window (batch of 1) latency, the online
    # monitor's request shape, unfused vs deployed (fused + buffers).
    predictor = serial[0]
    deployed = predictor.deploy()
    assert np.array_equal(predictor.predict(dataset.X),
                          deployed.predict(dataset.X)), \
        "fused predictions diverge from unfused"
    n_windows = 2000
    rows = [dataset.X[i % len(dataset):i % len(dataset) + 1]
            for i in range(n_windows)]
    for scorer in (predictor, deployed):  # warm both paths
        scorer.predict_proba(rows[0])
    t0 = time.perf_counter()
    for row in rows:
        predictor.predict_proba(row)
    unfused_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for row in rows:
        deployed.predict_proba(row)
    fused_s = time.perf_counter() - t0

    return {
        "environment": bench_environment(),
        "grid": {"seeds": len(seeds), "restarts": restarts,
                 "trainings": len(seeds) * restarts,
                 "windows": len(dataset), "epochs": configs[0].epochs},
        "serial_seconds": serial_s,
        "parallel_cold_seconds": cold_s,
        "speedup_parallel_cold": serial_s / cold_s,
        "warm_seconds": warm_s,
        "speedup_warm": serial_s / warm_s if warm_s else None,
        "fused_inference": {
            "windows": n_windows,
            "unfused_seconds": unfused_s,
            "fused_seconds": fused_s,
            "unfused_us_per_window": 1e6 * unfused_s / n_windows,
            "fused_us_per_window": 1e6 * fused_s / n_windows,
            "fused_speedup": unfused_s / fused_s,
        },
        "n_jobs": cold.n_jobs,
        "bit_identical": identical,
        "cold": cold.stats(),
        "warm": warm_ex.stats(),
    }


# -- sharded-simulation benchmark ---------------------------------------------


def bench_shard_workload(scale: float = 0.5):
    """Target + noise mix driving every OSS domain of the cluster."""
    from repro.experiments.runner import InterferenceSpec
    from repro.workloads.io500 import make_io500_task

    target = make_io500_task("ior-easy-write", ranks=4, scale=scale)
    noise = [
        InterferenceSpec("ior-hard-write", instances=2, ranks=2,
                         scale=scale / 2),
        InterferenceSpec("ior-easy-read", instances=1, ranks=2,
                         scale=scale / 2),
    ]
    return target, noise


def _shard_config(n_oss: int, osts_per_oss: int = 2):
    """The shard benchmark's experiment config at a given cluster size."""
    from repro.experiments.runner import ExperimentConfig, experiment_cluster

    cluster = dataclasses.replace(experiment_cluster(), n_oss=n_oss,
                                  osts_per_oss=osts_per_oss,
                                  sim_backend="batch")
    return ExperimentConfig(cluster=cluster, window_size=0.25,
                            sample_interval=0.125, warmup=0.5, seed=0)


def _run_digest(run) -> str:
    """Content digest of a run's protocol-visible output.

    Records, server samples and duration are byte-identical across shard
    counts and window policies; the digest lets the committed baseline
    (and CI's fixed-vs-adaptive gate) assert that without shipping the
    runs themselves.
    """
    import hashlib

    h = hashlib.sha256()
    h.update(repr(run.records).encode())
    h.update(repr(run.server_samples).encode())
    h.update(repr(run.duration).encode())
    return h.hexdigest()


def _shard_run(config, target, noise, shards: int,
               window_policy: str = "adaptive") -> dict[str, Any]:
    """One sharded execution; returns wall/events plus the run itself."""
    from repro.obs.metrics import REGISTRY
    from repro.sim.shard import execute_run_sharded

    REGISTRY.reset()
    t0 = time.perf_counter()
    run = execute_run_sharded(target, noise, config, shards=shards,
                              window_policy=window_policy)
    wall = time.perf_counter() - t0
    events = REGISTRY.gauge("shard.events_scheduled").value
    windows = REGISTRY.counter("shard.windows").value
    barrier = REGISTRY.histogram("shard.barrier_wait_seconds")
    return {
        "run": run,
        "stats": {
            "shards": shards,
            "policy": window_policy,
            "wall_seconds": wall,
            "events": int(events),
            "events_per_second": events / wall,
            "windows": int(windows),
            "windows_elided": int(
                REGISTRY.counter("shard.windows_elided").value),
            "messages": int(REGISTRY.counter("shard.messages").value),
            "ipc_roundtrips": int(
                REGISTRY.counter("shard.ipc_roundtrips").value),
            "barrier_wait_seconds_total": barrier.total,
            "barrier_wait_seconds_mean": (barrier.total / barrier.count
                                          if barrier.count else 0.0),
            "run_digest": _run_digest(run),
        },
    }


def bench_shard(shard_counts: tuple[int, ...] = (1, 2, 4),
                cluster_sizes: tuple[int, ...] = (2, 4, 8, 16, 32),
                scale: float = 0.5) -> dict[str, Any]:
    """Sharded-executor scaling: events/sec vs shard count + cluster size.

    Three curves (see DESIGN.md §12):

    * **scaling.fixed / scaling.adaptive** — one fixed cluster
      (4 OSS x 2 OST) run at each shard count under both window
      policies; every pass must produce byte-identical records/samples
      (the conservative protocol's N- and policy-invariance contract,
      asserted here and recorded as ``run_digest`` per row).  Adaptive
      must pay strictly fewer coordinator windows; ``window_reduction``
      records the shards=1 ratio — a deterministic, cpu-count-
      independent number that ``check_regression.py`` gates on.
      Wall-clock speedup only materialises with >= ``shards`` physical
      cores — the committed baseline records ``environment.cpu_count``
      so CI can judge those numbers in context.
    * **cluster_size_curve** — domains grow from 4 to 64 OSTs at
      ``shards=1`` (adaptive): how the per-window coordination cost
      amortises as the per-domain work grows.
    """
    target, noise = bench_shard_workload(scale)
    config = _shard_config(n_oss=4)

    scaling: dict[str, list[dict[str, Any]]] = {}
    reference = None
    for policy in ("fixed", "adaptive"):
        rows = []
        for shards in shard_counts:
            result = _shard_run(config, target, noise, shards,
                                window_policy=policy)
            run = result.pop("run")
            if reference is None:
                reference = run
            else:
                assert (run.records == reference.records
                        and run.server_samples == reference.server_samples
                        and run.duration == reference.duration), \
                    (f"policy={policy} shards={shards} diverged from "
                     f"policy=fixed shards={shard_counts[0]}")
            rows.append(result["stats"])
        base = rows[0]["wall_seconds"]
        for row in rows:
            row["speedup_vs_1"] = base / row["wall_seconds"]
        scaling[policy] = rows

    for fixed_row, adaptive_row in zip(scaling["fixed"],
                                       scaling["adaptive"]):
        assert adaptive_row["windows"] < fixed_row["windows"], \
            (f"adaptive paid {adaptive_row['windows']} windows vs fixed "
             f"{fixed_row['windows']} at shards={fixed_row['shards']}")

    curve = []
    for n_oss in cluster_sizes:
        cfg = _shard_config(n_oss=n_oss)
        result = _shard_run(cfg, target, noise, shards=1)
        stats = result["stats"]
        stats.pop("shards")
        curve.append({"n_oss": n_oss, "n_osts": cfg.cluster.n_osts, **stats})

    return {
        "environment": bench_environment(),
        "workload": {"target": "ior-easy-write", "ranks": 4, "scale": scale,
                     "noise": ["ior-hard-write x2", "ior-easy-read x1"]},
        "cluster": {"n_oss": 4, "osts_per_oss": 2,
                    "sim_backend": "batch"},
        "shard_counts": list(shard_counts),
        "scaling": scaling,
        "window_reduction": (scaling["fixed"][0]["windows"]
                             / scaling["adaptive"][0]["windows"]),
        "speedup_at_max_shards": scaling["adaptive"][-1]["speedup_vs_1"],
        "bit_identical": True,
        "cluster_size_curve": curve,
    }


# -- prediction-service benchmark ---------------------------------------------


def _serve_scorer():
    """A small deployed predictor for the service benchmark.

    Trained quickly on the synthetic training set — the benchmark
    measures the service machinery (batching, queues, chaos), not
    training, so one restart and few epochs suffice.
    """
    from repro.core.nn.train import TrainConfig
    from repro.core.predictor import InterferencePredictor

    dataset = bench_train_dataset()
    predictor = InterferencePredictor.train(
        dataset, config=TrainConfig(epochs=10, patience=5, seed=0),
        restarts=1)
    return predictor.deploy()


def bench_serve(stream_counts: tuple[int, ...] = (16, 64, 256),
                n_windows: int = 20) -> dict[str, Any]:
    """Multi-tenant service throughput/latency vs concurrent streams.

    Two curves over the stream counts:

    * **clean** — well-behaved tenants only: windows/sec, p50/p99
      request latency, mean micro-batch size.  Throughput should grow
      with stream count as batching amortises the per-forward cost —
      the whole point of sharing one model across tenants.
    * **chaos** — the same populations under a fixed
      :class:`~repro.faults.ServiceFaultPlan` (floods, stalls,
      disconnects, reorder, duplicates, slow batches): throughput plus
      the shed/degraded tenant rates, i.e. what the robustness envelope
      costs and contains.

    Wall-clock numbers; the committed baseline embeds the environment
    block like every other suite.
    """
    from repro.faults import ServiceFaultPlan
    from repro.obs.metrics import REGISTRY
    from repro.serve import run_soak
    from repro.serve.service import BATCH_SIZE_BUCKETS

    scorer = _serve_scorer()
    plan = ServiceFaultPlan(seed=3, flood_rate=0.15, stall_rate=0.1,
                            disconnect_rate=0.05, reorder_rate=0.15,
                            duplicate_rate=0.1, slow_batch_rate=0.02,
                            slow_batch_seconds=0.02)

    def _one(n_tenants: int, with_chaos: bool) -> dict[str, Any]:
        REGISTRY.reset()
        report = run_soak(scorer, n_tenants=n_tenants, n_windows=n_windows,
                          plan=plan if with_chaos else None, seed=7)
        assert not report.errors, \
            f"soak raised unhandled exceptions: {report.errors}"
        latency = REGISTRY.histogram("serve.latency_seconds")
        sizes = REGISTRY.histogram("serve.batch_size",
                                   boundaries=BATCH_SIZE_BUCKETS)
        terminal = report.terminal_counts
        row = {
            "tenants": n_tenants,
            "windows_resolved": report.windows_served,
            "wall_seconds": report.elapsed,
            "windows_per_second": report.throughput,
            "latency_p50_ms": 1e3 * latency.quantile(0.5),
            "latency_p99_ms": 1e3 * latency.quantile(0.99),
            "mean_batch_size": (sizes.total / sizes.count
                                if sizes.count else 0.0),
        }
        if with_chaos:
            row["degraded_rate"] = terminal["degraded"] / n_tenants
            row["shed_rate"] = terminal["shed"] / n_tenants
            row["statuses"] = report.status_totals
        return row

    clean = [_one(n, with_chaos=False) for n in stream_counts]
    chaos = [_one(n, with_chaos=True) for n in stream_counts]
    REGISTRY.reset()
    return {
        "environment": bench_environment(),
        "stream_counts": list(stream_counts),
        "windows_per_tenant": n_windows,
        "fault_plan": plan.to_dict(),
        "fault_plan_digest": plan.digest(),
        "clean": clean,
        "chaos": chaos,
        "peak_windows_per_second": max(r["windows_per_second"]
                                       for r in clean),
    }


# -- dataset-store benchmark --------------------------------------------------


def _dataset_memmap_files(base: pathlib.Path, n: int = 120_000,
                          n_servers: int = 7,
                          n_features: int = 10) -> tuple[pathlib.Path,
                                                         pathlib.Path]:
    """A deterministic >=100k-window training set, written out-of-core.

    Same learnable structure as :func:`bench_train_dataset`, but filled
    chunk-by-chunk straight into an ``open_memmap`` so generating the
    file never holds the tensor in memory either.
    """
    from repro.common.rng import derive_rng

    x_path = base / "bench-windows.npy"
    y_path = base / "bench-labels.npy"
    X = np.lib.format.open_memmap(x_path, mode="w+", dtype=np.float64,
                                  shape=(n, n_servers, n_features))
    y = np.empty(n, dtype=np.int64)
    rng = derive_rng(0, "bench-dataset-memmap")
    step = 8192
    for start in range(0, n, step):
        stop = min(n, start + step)
        chunk = rng.normal(size=(stop - start, n_servers, n_features))
        labels = (chunk[:, :, :3].mean(axis=(1, 2))
                  + 0.3 * rng.normal(size=stop - start) > 0).astype(np.int64)
        chunk[labels == 1, :, :3] += 0.5
        X[start:stop] = chunk
        y[start:stop] = labels
    X.flush()
    del X
    np.save(y_path, y)
    return x_path, y_path


def _dataset_train_worker(x_path: str, y_path: str,
                          in_memory: bool) -> dict[str, Any]:
    """Train once and report wall/peak-RSS/params-digest (spawn child).

    ``in_memory=True`` reproduces the pre-store footprint: the whole
    tensor on the heap plus the eager normalised copy the lazy training
    path no longer makes.  ``in_memory=False`` opens the same file as a
    read-only memmap and trains through the lazy per-batch path.  The
    two must produce bit-identical parameters.
    """
    import hashlib

    from repro.core.dataset import Dataset, Normalizer
    from repro.core.nn.train import TrainConfig
    from repro.core.predictor import InterferencePredictor

    y = np.load(y_path)
    eager_copy = None
    if in_memory:
        X = np.load(x_path)
        eager_copy = Normalizer().fit(X).transform(X)
    else:
        X = np.lib.format.open_memmap(x_path, mode="r")
    names = tuple(f"f{i}" for i in range(X.shape[2]))
    dataset = Dataset(X, y, feature_names=names)
    config = TrainConfig(epochs=2, patience=2, batch_size=256, seed=0)
    t0 = time.perf_counter()
    predictor = InterferencePredictor.train(dataset, config=config,
                                            restarts=1)
    wall = time.perf_counter() - t0
    h = hashlib.blake2b(digest_size=16)
    for param in predictor.model.params():
        h.update(np.ascontiguousarray(param.value).tobytes())
    return {
        "seconds": wall,
        "peak_rss_bytes": _peak_rss_bytes(),
        "params_digest": h.hexdigest(),
        # eager_copy stays referenced to here so the legacy footprint is
        # held through training, exactly as the pre-store path did.
        "eager_copies": 0 if eager_copy is None else 1,
    }


def _in_spawn_child(fn, *args):
    """Run ``fn(*args)`` in a fresh spawn child (its own peak RSS)."""
    import concurrent.futures
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    with concurrent.futures.ProcessPoolExecutor(max_workers=1,
                                                mp_context=ctx) as pool:
        return pool.submit(fn, *args).result()


def bench_dataset(jobs: int | None = None,
                  memmap_windows: int = 120_000) -> dict[str, Any]:
    """The columnar dataset store vs the in-memory ETL path.

    Four store passes over the sweep grid (run cache pre-primed, so the
    numbers measure ETL, not simulation): the in-memory
    ``collect_windows`` baseline, a cold ``DatasetStore.build`` (shard
    append + assembly), a warm rebuild (manifest + assembly-cache hit:
    zero simulations, zero shard reads, asserted), and a one-pair
    warm append into both a small and a 3x-larger store — the append
    walls must match, demonstrating cost scales with *new* windows, not
    ingested ones.  All store-built datasets must match the in-memory
    ``content_digest()`` exactly.

    Separately, a ``memmap_windows``-window synthetic set is trained
    once fully in memory with the legacy eager-normalised copy and once
    memmap-backed through the lazy path, in fresh spawn children, to
    record the peak-RSS contrast; parameters must be bit-identical.
    """
    from repro.core.labeling import BINARY_THRESHOLDS
    from repro.data import DatasetStore
    from repro.experiments.datagen import (Scenario, bank_to_dataset,
                                           collect_windows)
    from repro.experiments.runner import InterferenceSpec
    from repro.parallel import RunCache, SweepExecutor

    jobs = jobs or min(4, os.cpu_count() or 1)
    targets, scenarios, config = bench_grid("batch")
    extra = Scenario(
        "io500-x3",
        (InterferenceSpec("ior-easy-write", instances=3, ranks=2, scale=0.2),
         InterferenceSpec("ior-easy-read", instances=2, ranks=2, scale=0.2)),
    )

    with tempfile.TemporaryDirectory(prefix="bench-dataset-") as tmpdir:
        tmp = pathlib.Path(tmpdir)
        runcache = RunCache(tmp / "runcache")

        def _executor() -> SweepExecutor:
            return SweepExecutor(n_jobs=jobs, cache=runcache)

        # Prime the run cache (untimed): every timed pass below measures
        # ETL cost, not simulator cost.
        collect_windows(targets, scenarios + [extra], config,
                        executor=_executor())

        t0 = time.perf_counter()
        bank_mem = collect_windows(targets, scenarios, config,
                                   executor=_executor())
        ds_mem = bank_to_dataset(bank_mem, BINARY_THRESHOLDS, source="bench")
        in_memory_s = time.perf_counter() - t0

        cold_store = DatasetStore(tmp / "store")
        t0 = time.perf_counter()
        ds_cold = cold_store.build(targets, scenarios, config,
                                   source="bench", executor=_executor())
        cold_s = time.perf_counter() - t0

        warm_store = DatasetStore(tmp / "store")
        warm_exec = _executor()
        t0 = time.perf_counter()
        ds_warm = warm_store.build(targets, scenarios, config,
                                   source="bench", executor=warm_exec)
        warm_s = time.perf_counter() - t0

        digest = ds_mem.content_digest()
        identical = (ds_cold.content_digest() == digest
                     and ds_warm.content_digest() == digest)
        assert identical, "store-built dataset digests diverge from in-memory"
        assert warm_store.last_build["missing_pairs"] == 0, \
            "warm rebuild re-appended pairs"
        assert warm_exec.runs_executed == 0, "warm rebuild still simulated"
        assert warm_store.shards_scanned == 0, "warm rebuild re-read shards"
        assert warm_store.assembly_hits == 1, \
            "warm rebuild missed the assembly cache"

        # Warm append: the same single new pair into a 1-target store
        # and into the full-grid store.  The walls must not scale with
        # what is already ingested.
        small_store = DatasetStore(tmp / "store-small")
        small_store.build_bank(targets[:1], scenarios, config,
                               executor=_executor())
        t0 = time.perf_counter()
        small_store.build_bank(targets[:1], [extra], config,
                               executor=_executor())
        append_small_s = time.perf_counter() - t0

        large_store = DatasetStore(tmp / "store")
        t0 = time.perf_counter()
        large_store.build_bank(targets[:1], [extra], config,
                               executor=_executor())
        append_large_s = time.perf_counter() - t0
        assert small_store.last_build["missing_pairs"] == 1
        assert large_store.last_build["missing_pairs"] == 1

        small_windows = small_store.stats()["windows"]
        large_windows = large_store.stats()["windows"]

        memmap_x, memmap_y = _dataset_memmap_files(tmp, n=memmap_windows)
        lazy = _in_spawn_child(_dataset_train_worker, str(memmap_x),
                               str(memmap_y), False)
        eager = _in_spawn_child(_dataset_train_worker, str(memmap_x),
                                str(memmap_y), True)
        assert lazy["params_digest"] == eager["params_digest"], \
            "memmap-backed training diverged from in-memory training"

        return {
            "environment": bench_environment(),
            "grid": {"targets": len(targets), "scenarios": len(scenarios),
                     "pairs": len(targets) * len(scenarios),
                     "windows": len(ds_mem)},
            "in_memory_seconds": in_memory_s,
            "cold_build_seconds": cold_s,
            "warm_rebuild_seconds": warm_s,
            "speedup_warm_vs_in_memory": in_memory_s / warm_s if warm_s
            else None,
            "bit_identical": identical,
            "content_digest": digest,
            "warm": {"missing_pairs": 0,
                     "runs_executed": warm_exec.runs_executed,
                     "shards_scanned": warm_store.shards_scanned,
                     "assembly_hits": warm_store.assembly_hits},
            "append": {
                "small_store_windows": small_windows,
                "large_store_windows": large_windows,
                "append_small_seconds": append_small_s,
                "append_large_seconds": append_large_s,
                "ratio_large_vs_small": append_large_s / append_small_s,
            },
            "memmap_training": {
                "windows": memmap_windows,
                "in_memory_seconds": eager["seconds"],
                "memmap_seconds": lazy["seconds"],
                "in_memory_peak_rss_bytes": eager["peak_rss_bytes"],
                "memmap_peak_rss_bytes": lazy["peak_rss_bytes"],
                "rss_ratio_in_memory_vs_memmap":
                    eager["peak_rss_bytes"] / lazy["peak_rss_bytes"],
                "bit_identical": True,
            },
            "cold": cold_store.stats(),
        }


# -- CLI ----------------------------------------------------------------------


def _write(result: dict[str, Any], path: pathlib.Path) -> None:
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")


def main(argv: list[str] | None = None) -> int:
    """``python -m repro bench`` — regenerate the committed baselines."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Regenerate BENCH_engine.json / BENCH_sweep.json / "
                    "BENCH_train.json / BENCH_shard.json.",
    )
    parser.add_argument("which", nargs="?", default="all",
                        choices=("engine", "sweep", "train", "shard",
                                 "serve", "dataset", "all"))
    parser.add_argument("--only", action="append", default=None,
                        metavar="SUITE",
                        choices=("engine", "sweep", "train", "shard",
                                 "serve", "dataset"),
                        help="run only this suite; repeatable "
                             "(--only engine --only shard). Overrides the "
                             "positional selection")
    parser.add_argument("--shards", type=int, nargs="+", default=(1, 2, 4),
                        metavar="N",
                        help="shard counts for the shard suite's scaling "
                             "curve (default: 1 2 4)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="workers for the parallel passes "
                             "(default: min(4, cores) for sweep, "
                             "min(2, cores) for train)")
    parser.add_argument("--out-dir", type=pathlib.Path,
                        default=pathlib.Path("."),
                        help="directory for the BENCH_*.json files "
                             "(default: current directory)")
    args = parser.parse_args(argv)
    args.out_dir.mkdir(parents=True, exist_ok=True)

    if args.only:
        selected = tuple(dict.fromkeys(args.only))  # de-dup, keep order
    elif args.which == "all":
        selected = ("engine", "sweep", "train", "shard", "serve", "dataset")
    else:
        selected = (args.which,)

    if "engine" in selected:
        result = bench_engine()
        rp = result["request_path"]
        print(f"engine: {result['timeouts_per_second']:,.0f} timeouts/s; "
              f"request path: process {rp['process_requests_per_second']:,.0f}"
              f" req/s vs batch {rp['batch_requests_per_second']:,.0f} req/s "
              f"({rp['batch_speedup']:.2f}x)")
        _write(result, args.out_dir / "BENCH_engine.json")
    if "sweep" in selected:
        result = bench_sweep(jobs=args.jobs)
        print(f"sweep: serial event {result['serial_event_seconds']:.2f}s, "
              f"serial batch {result['serial_batch_seconds']:.2f}s "
              f"({result['backend_speedup_serial']:.2f}x), cold parallel "
              f"batch {result['cold_batch_seconds']:.2f}s "
              f"({result['cold_improvement_vs_serial_event']:.2f}x), warm "
              f"{result['warm_seconds']:.2f}s")
        _write(result, args.out_dir / "BENCH_sweep.json")
    if "train" in selected:
        result = bench_train(jobs=args.jobs)
        fi = result["fused_inference"]
        print(f"train: serial {result['serial_seconds']:.2f}s, cold "
              f"parallel {result['parallel_cold_seconds']:.2f}s "
              f"({result['speedup_parallel_cold']:.2f}x), warm "
              f"{result['warm_seconds']:.2f}s "
              f"({result['speedup_warm']:.0f}x); inference "
              f"{fi['unfused_us_per_window']:.0f}us -> "
              f"{fi['fused_us_per_window']:.0f}us/window "
              f"({fi['fused_speedup']:.2f}x fused)")
        _write(result, args.out_dir / "BENCH_train.json")
    if "shard" in selected:
        result = bench_shard(shard_counts=tuple(args.shards))
        rows = ", ".join(
            f"{a['shards']}: {f['windows']}w -> {a['windows']}w, "
            f"{a['events_per_second']:,.0f} ev/s "
            f"({a['speedup_vs_1']:.2f}x)"
            for f, a in zip(result["scaling"]["fixed"],
                            result["scaling"]["adaptive"]))
        top = result["cluster_size_curve"][-1]
        print(f"shard: fixed->adaptive {rows}; window reduction "
              f"{result['window_reduction']:.2f}x; {top['n_osts']} OSTs "
              f"at shards=1: {top['events_per_second']:,.0f} ev/s")
        _write(result, args.out_dir / "BENCH_shard.json")
    if "serve" in selected:
        result = bench_serve()
        rows = ", ".join(
            f"{r['tenants']}: {r['windows_per_second']:,.0f} w/s "
            f"(p99 {r['latency_p99_ms']:.1f}ms)" for r in result["clean"])
        worst = result["chaos"][-1]
        print(f"serve: clean {rows}; chaos at {worst['tenants']} tenants: "
              f"{worst['windows_per_second']:,.0f} w/s, "
              f"{worst['degraded_rate']:.0%} degraded, "
              f"{worst['shed_rate']:.0%} shed")
        _write(result, args.out_dir / "BENCH_serve.json")
    if "dataset" in selected:
        result = bench_dataset(jobs=args.jobs)
        mm = result["memmap_training"]
        ap = result["append"]
        print(f"dataset: in-memory {result['in_memory_seconds']:.2f}s, cold "
              f"build {result['cold_build_seconds']:.2f}s, warm rebuild "
              f"{result['warm_rebuild_seconds']:.2f}s; append 1 pair: "
              f"{ap['append_small_seconds']:.2f}s small vs "
              f"{ap['append_large_seconds']:.2f}s large "
              f"({ap['ratio_large_vs_small']:.2f}x); "
              f"{mm['windows']:,} windows train: "
              f"{mm['in_memory_peak_rss_bytes'] / 1e6:,.0f}MB in-memory vs "
              f"{mm['memmap_peak_rss_bytes'] / 1e6:,.0f}MB memmap peak RSS")
        _write(result, args.out_dir / "BENCH_dataset.json")
    return 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    raise SystemExit(main())
