"""Process-wide metrics registry: counters, gauges and fixed-bucket histograms.

The paper's methodology is built on counter deltas (Table II's diskstats
fields); this module gives our *own* stack the same discipline.  Every
tier registers named metrics in a shared :class:`MetricsRegistry` —
simulator monitors count samples, the training loop records epoch wall
times and gradient norms, the online predictor times its inference path
— and a single :meth:`~MetricsRegistry.snapshot` drops the whole state
into a run manifest.

Histograms use **fixed bucket boundaries** chosen at registration, never
adapted to the data, so aggregates are deterministic and two snapshots
are comparable bucket-for-bucket.  Bucket semantics follow Prometheus:
``counts[i]`` is the number of observations ``v <= boundaries[i]`` that
fell past ``boundaries[i-1]``, with one overflow bucket at the end.

Metric objects are plain attribute-bumping classes; resolve them once
(``c = registry.counter("x")``) and hot loops pay a single attribute
increment per event.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "registry", "DEFAULT_TIME_BUCKETS",
]

#: Default boundaries for time-like histograms (seconds): 100 µs .. 100 s,
#: roughly logarithmic.  Fixed here so every run buckets identically.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0, 100.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease ({amount})")
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """An instantaneous value that can move both ways."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max.

    ``boundaries`` must be strictly increasing; observations land in the
    first bucket whose upper edge is ``>= v`` (``bisect_left``), with one
    unbounded overflow bucket appended.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "count", "min", "max")
    kind = "histogram"

    def __init__(self, name: str,
                 boundaries: Iterable[float] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: boundaries must be increasing")
        self.name = name
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-upper-edge quantile estimate (Prometheus semantics)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return (self.boundaries[i] if i < len(self.boundaries)
                        else self.max)
        return self.max

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metrics, created on first use and snapshot in sorted order."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  boundaries: Iterable[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        hist = self._get(name, Histogram, boundaries)
        if hist.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} re-registered with different boundaries"
            )
        return hist

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready dump of every metric, keys sorted for stable diffs."""
        return {name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)}

    def merge_snapshot(self, snapshot: dict[str, dict],
                       worker: str | None = None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the parallel executors: worker processes return their
        registry snapshot with each finished unit of work, and merging
        keeps the parent's counters equal to what a serial execution
        would have recorded.  The merge is **type-aware**:

        * **counters** sum;
        * **histograms** merge bucket-wise (plus sum/count/min/max);
        * **gauges** are instantaneous, so there is no meaningful sum.
          Without a ``worker`` label the merged value overwrites (last
          delivery wins — an explicit, documented reduce, only safe when
          snapshots arrive in a meaningful order).  With a ``worker``
          label each origin keeps its own value as a labeled series
          ``name{worker=<label>}`` — nothing is silently clobbered, and
          because executors label by stable work identity (run-key
          prefix, restart tag — never a pid) the merged registry is
          deterministic whatever order snapshots complete in.
        """
        for name in sorted(snapshot):
            doc = snapshot[name]
            kind = doc.get("kind")
            if kind == Counter.kind:
                self.counter(name).inc(doc["value"])
            elif kind == Gauge.kind:
                if worker is not None:
                    self.gauge(f"{name}{{worker={worker}}}").set(doc["value"])
                else:
                    self.gauge(name).set(doc["value"])
            elif kind == Histogram.kind:
                hist = self.histogram(name, doc["boundaries"])
                counts = doc["counts"]
                if len(counts) != len(hist.counts):
                    raise ValueError(
                        f"histogram {name!r}: snapshot bucket count mismatch"
                    )
                for i, c in enumerate(counts):
                    hist.counts[i] += c
                hist.total += doc["sum"]
                hist.count += doc["count"]
                if doc["count"]:
                    hist.min = min(hist.min, doc["min"])
                    hist.max = max(hist.max, doc["max"])
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")

    def reset(self) -> None:
        """Forget every metric (used between runs and in tests)."""
        self._metrics.clear()


#: The process-wide registry. Unlike tracing, always on: bumping a counter
#: is too cheap to gate.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return REGISTRY
