"""``repro.obs`` — tracing, metrics, logging and run manifests.

The observability layer threaded through every tier of the stack:

* :mod:`repro.obs.trace` — span tracer over *simulated* time, recording
  the client→network→server→disk lifecycle of every I/O request when a
  tracer is installed (near-zero overhead when none is);
* :mod:`repro.obs.metrics` — process-wide registry of counters, gauges
  and fixed-bucket histograms used by the monitors, the training loop
  and the online predictor;
* :mod:`repro.obs.log` — ``repro``-namespaced stdlib logging;
* :mod:`repro.obs.manifest` — JSON run manifests (seed, config, git SHA,
  timings, metric snapshot) stamped by every experiment entry point;
* :mod:`repro.obs.distributed` — cross-process trace propagation: the
  serializable :class:`TraceContext` handed to worker processes and the
  deterministic merge of their span shipments into one timeline;
* :mod:`repro.obs.profile` — lightweight wall-clock phase profiler with
  hierarchical attribution and a critical-path summary;
* :mod:`repro.obs.export` / :mod:`repro.obs.summary` /
  :mod:`repro.obs.report` — JSONL/JSON exporters, the renderers behind
  ``python -m repro obs``, and the ``repro obs report`` surface
  (terminal report + Chrome trace-event JSON for Perfetto).

Quickstart::

    from repro import obs

    obs.configure_logging("INFO")
    tracer = obs.install_tracer()
    pair = run_pair(target, noise, config)       # spans record themselves
    obs.uninstall_tracer()
    obs.save_trace(tracer, "run.trace.jsonl")
    print(obs.render_span_summary(tracer.spans))
"""

from repro.obs.distributed import (
    WALL_CLOCK,
    TraceContext,
    attach,
    current_context,
    merge_shipment,
    ship,
)
from repro.obs.export import (
    load_metrics,
    load_trace,
    save_metrics,
    save_trace,
)
from repro.obs.log import configure_logging, get_logger
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    config_to_dict,
    git_revision,
    load_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.profile import PhaseProfiler, PhaseRecord, phase, profiling
from repro.obs.profile import get as current_profiler
from repro.obs.profile import install as install_profiler
from repro.obs.profile import uninstall as uninstall_profiler
from repro.obs.report import (
    chrome_trace_doc,
    executor_health,
    render_report,
    save_chrome_trace,
    split_spans,
    worker_breakdown,
)
from repro.obs.summary import (
    render_manifest,
    render_metrics_table,
    render_span_summary,
    summarise_file,
)
from repro.obs.trace import Span, Tracer, tracing
from repro.obs.trace import get as current_tracer
from repro.obs.trace import install as install_tracer
from repro.obs.trace import uninstall as uninstall_tracer

__all__ = [
    # trace
    "Span", "Tracer", "tracing", "current_tracer", "install_tracer",
    "uninstall_tracer",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "registry", "DEFAULT_TIME_BUCKETS",
    # logging
    "configure_logging", "get_logger",
    # manifests
    "RunManifest", "build_manifest", "config_to_dict", "git_revision",
    "load_manifest", "write_manifest",
    # distributed tracing
    "TraceContext", "WALL_CLOCK", "current_context", "attach", "ship",
    "merge_shipment",
    # profiling
    "PhaseProfiler", "PhaseRecord", "phase", "profiling",
    "current_profiler", "install_profiler", "uninstall_profiler",
    # export + rendering
    "save_trace", "load_trace", "save_metrics", "load_metrics",
    "render_span_summary", "render_metrics_table", "render_manifest",
    "summarise_file",
    # reporting
    "render_report", "chrome_trace_doc", "save_chrome_trace",
    "split_spans", "worker_breakdown", "executor_health",
]
