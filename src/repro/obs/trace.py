"""Span-based tracer over *simulated* time.

The simulator's request lifecycle crosses several tiers (client RPC
windows, the fluid network, OST caches, the block-layer elevator), and a
single slow operation can only be explained by seeing where its time
went.  This module records that as **spans**: named intervals of
simulated time with attributes and an optional parent, the same shape as
an OpenTelemetry/Chrome-trace span but clocked on ``env.now`` instead of
the wall clock — which makes a trace a deterministic artefact: two runs
with the same seed produce byte-identical span streams.

Design constraints:

* **Near-zero overhead when disabled.**  Nothing is installed by
  default; instrumentation sites read the module-global :data:`TRACER`
  and skip everything on ``None``.  That is one global load plus an
  ``is None`` test per site — unmeasurable next to the event loop's own
  heap operations.
* **No imports from the rest of the package.**  The discrete-event
  kernel (:mod:`repro.sim.engine`) imports this module, so it must stay
  a stdlib-only leaf.
* **Determinism.**  Span ids are sequence numbers handed out in start
  order; attributes never include wall-clock values.

Usage::

    from repro.obs import trace

    tracer = trace.install()          # fresh Tracer, recording
    run_pair(...)                     # instrumented code records spans
    trace.uninstall()
    for span in tracer.spans:
        print(span.name, span.duration)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "TRACER", "install", "uninstall", "get", "tracing"]


class Span:
    """One named interval of simulated time.

    ``end`` is ``None`` while the span is open; :meth:`Tracer.finish`
    closes it.  ``parent_id`` links child spans (an RPC inside a client
    operation, a network transfer inside an RPC) into a tree that a
    flame-graph renderer can reconstruct from ids alone.  ``trace_id``
    names the distributed trace this span belongs to — every span of one
    (possibly multi-process) execution shares it, so merged timelines
    stay attributable after worker spans are folded into the parent's
    tracer (:mod:`repro.obs.distributed`).
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs",
                 "trace_id")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 start: float, attrs: dict[str, Any],
                 trace_id: str | None = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs = attrs
        self.trace_id = trace_id

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} (#{self.span_id}) is still open")
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation with a stable key order.

        ``trace_id`` is only emitted when set, so traces recorded by
        pre-distributed tracers stay byte-identical to what they wrote.
        """
        doc = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        span = cls(int(data["span_id"]),
                   None if data.get("parent_id") is None else int(data["parent_id"]),
                   str(data["name"]), float(data["start"]), dict(data.get("attrs", {})),
                   trace_id=data.get("trace_id"))
        if data.get("end") is not None:
            span.end = float(data["end"])
        return span

    def __repr__(self) -> str:
        dur = "open" if self.end is None else f"{self.end - self.start:.6g}s"
        return f"Span(#{self.span_id} {self.name} @{self.start:.6g} {dur})"


class Tracer:
    """Collects spans plus a few kernel-level counters for one run.

    ``trace_id`` (optional) names the distributed trace this tracer
    records into; every span it starts is stamped with it.  Ids stay
    plain sequence numbers — deterministic, never wall-clock derived —
    and :mod:`repro.obs.distributed` remaps worker-local ids when spans
    from several processes merge into one timeline.
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.spans: list[Span] = []
        self.trace_id = trace_id
        self._next_id = 1
        #: Events delivered by the discrete-event kernel while recording.
        self.events_fired = 0
        #: Processes spawned by the kernel while recording.
        self.processes_spawned = 0

    def start(self, name: str, now: float, parent: "Span | int | None" = None,
              **attrs: Any) -> Span:
        """Open a span at simulated time ``now``; returns the handle."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(self._next_id, parent_id, name, now, attrs,
                    trace_id=self.trace_id)
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish(self, span: Span, now: float, **attrs: Any) -> Span:
        """Close a span at simulated time ``now``; extra attrs are merged."""
        if span.end is not None:
            raise ValueError(f"span {span.name!r} (#{span.span_id}) already finished")
        if now < span.start:
            raise ValueError(f"span would end before it starts: {now} < {span.start}")
        span.end = now
        if attrs:
            span.attrs.update(attrs)
        return span

    @contextmanager
    def span(self, env: Any, name: str, parent: "Span | int | None" = None,
             **attrs: Any) -> Iterator[Span]:
        """Context manager over an ``env.now``-clocked code block."""
        handle = self.start(name, env.now, parent=parent, **attrs)
        try:
            yield handle
        finally:
            self.finish(handle, env.now)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name aggregates: count and total/mean/max simulated time."""
        out: dict[str, dict[str, float]] = {}
        for span in self.spans:
            if span.end is None:
                continue
            row = out.setdefault(span.name,
                                 {"count": 0.0, "total": 0.0, "max": 0.0})
            dur = span.end - span.start
            row["count"] += 1
            row["total"] += dur
            row["max"] = max(row["max"], dur)
        for row in out.values():
            row["mean"] = row["total"] / row["count"] if row["count"] else 0.0
        return out


#: The process-wide tracer; ``None`` (the default) disables all tracing.
TRACER: Tracer | None = None


def install(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) a tracer as the process-wide recorder."""
    global TRACER
    TRACER = tracer if tracer is not None else Tracer()
    return TRACER


def uninstall() -> Tracer | None:
    """Remove the process-wide tracer; returns the one removed."""
    global TRACER
    tracer, TRACER = TRACER, None
    return tracer


def get() -> Tracer | None:
    """The currently installed tracer, or ``None`` when tracing is off."""
    return TRACER


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """``with tracing() as tr:`` — install for the block, restore after."""
    global TRACER
    previous = TRACER
    installed = install(tracer)
    try:
        yield installed
    finally:
        TRACER = previous
