"""JSONL exporters for traces and metric snapshots.

Mirrors :mod:`repro.monitor.persist`'s philosophy — observability
artefacts get a durable on-disk form so they can be archived next to
results and analysed offline by ``python -m repro obs`` without the
producing process.  Formats:

* ``*.trace.jsonl`` — line 1 is a header object
  (``{"kind": "repro-trace", ...}``), every following line one span;
* ``*.metrics.json`` — a single object wrapping a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.

Both are pure ``json`` text: greppable and diffable.  Traces whose spans
are clocked on simulated time are byte-identical across same-seed runs;
wall-clock spans (``attrs["clock"] == "wall"``, emitted around parallel
jobs and profiled phases) carry real timings and naturally vary.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "TRACE_KIND", "METRICS_KIND",
    "save_trace", "load_trace", "save_metrics", "load_metrics",
]

TRACE_KIND = "repro-trace"
METRICS_KIND = "repro-metrics"
_FORMAT_VERSION = 1


def save_trace(source: Tracer | Iterable[Span],
               path: str | pathlib.Path) -> pathlib.Path:
    """Write spans as JSONL (header line + one span per line)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    spans = list(source.spans if isinstance(source, Tracer) else source)
    header: dict[str, Any] = {
        "kind": TRACE_KIND,
        "version": _FORMAT_VERSION,
        "spans": len(spans),
    }
    if isinstance(source, Tracer):
        header["events_fired"] = source.events_fired
        header["processes_spawned"] = source.processes_spawned
        if source.trace_id:
            header["trace_id"] = source.trace_id
    with open(path, "w") as fp:
        fp.write(json.dumps(header, sort_keys=True) + "\n")
        for span in spans:
            fp.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return path


def load_trace(path: str | pathlib.Path) -> list[Span]:
    """Read spans written by :func:`save_trace`."""
    path = pathlib.Path(path)
    with open(path) as fp:
        header_line = fp.readline()
        if not header_line.strip():
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("kind") != TRACE_KIND:
            raise ValueError(f"{path}: not a repro trace file")
        spans = [Span.from_dict(json.loads(line))
                 for line in fp if line.strip()]
    declared = header.get("spans")
    if declared is not None and declared != len(spans):
        raise ValueError(
            f"{path}: header declares {declared} spans, found {len(spans)}"
        )
    return spans


def save_metrics(source: MetricsRegistry | dict,
                 path: str | pathlib.Path) -> pathlib.Path:
    """Write a metrics snapshot (or a registry's current state) as JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = (source.snapshot() if isinstance(source, MetricsRegistry)
                else dict(source))
    doc = {"kind": METRICS_KIND, "version": _FORMAT_VERSION,
           "metrics": snapshot}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_metrics(path: str | pathlib.Path) -> dict[str, dict]:
    """Read a snapshot written by :func:`save_metrics`."""
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("kind") != METRICS_KIND:
        raise ValueError(f"{path}: not a repro metrics file")
    return doc["metrics"]
