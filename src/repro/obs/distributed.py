"""Cross-process trace propagation and deterministic span merging.

The span tracer (:mod:`repro.obs.trace`) records one process's view.
Parallel sweeps and training batches execute in *worker* processes where
that view used to be simply discarded — the worker detached the tracer
and only a flat metrics snapshot crossed the process boundary.  This
module makes traces first-class across that boundary:

* a :class:`TraceContext` is the serializable seed the parent hands a
  worker: the ``trace_id`` of the distributed trace plus the parent span
  the worker's spans logically nest under;
* :func:`attach` installs a fresh worker tracer from a context,
  :func:`ship` packs the finished spans (plus the tracer's kernel
  counters) into a plain picklable document;
* :func:`merge_shipment` folds a shipment back into the parent tracer —
  remapping worker-local span ids onto the parent's id sequence,
  re-parenting worker root spans under the designated parent span, and
  tagging every merged span with its worker label.

Determinism contract: span **ids** come from stable counters — the
parent allocates merged ids in *submission* order, never completion
order, so two runs of the same sweep produce the same span tree shape.
Simulated-time spans keep byte-identical timestamps; wall-clock spans
(``attrs["clock"] == "wall"``: queue-wait, execute, retry, cache probe)
necessarily carry real timings and are excluded from byte-identity
claims.  Wall timestamps are expressed relative to the parent tracer's
``wall_epoch`` so one invocation shares a single wall timeline; the raw
clock is ``time.monotonic()``, which on Linux is system-wide and thus
comparable across the parent and its worker processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.obs.trace import Span, Tracer

__all__ = [
    "TraceContext", "current_context", "attach", "ship", "merge_shipment",
    "SPILL_THRESHOLD", "spill_spans", "load_spilled", "merge_spilled",
    "wall_now", "monotonic_to_wall",
]

#: attrs key marking a span as wall-clocked rather than simulated-time.
WALL_CLOCK = "wall"

#: Spans buffered before :func:`spill_spans` moves them to the on-disk
#: spool.  One shared constant so every hosting mode (in-process domain
#: groups, shard workers) spills at the same point — the spill pattern
#: is part of the deterministic merge order.
SPILL_THRESHOLD = 20_000


@dataclass(frozen=True)
class TraceContext:
    """The serializable seed a worker tracer is attached from.

    ``parent_span_id`` is a span id *in the parent's tracer*; the worker
    never sees that tracer, it just carries the id back so the merge can
    re-parent its root spans.  ``worker`` is a stable label (the run key
    prefix, a restart tag) — never a pid, which would vary run to run.
    """

    trace_id: str
    parent_span_id: int | None = None
    worker: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id,
                "worker": self.worker}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TraceContext":
        return cls(trace_id=str(doc["trace_id"]),
                   parent_span_id=(None if doc.get("parent_span_id") is None
                                   else int(doc["parent_span_id"])),
                   worker=str(doc.get("worker", "")))


def current_context(worker: str = "") -> TraceContext | None:
    """A context for the installed tracer, or ``None`` when tracing is off."""
    from repro.obs import trace

    tracer = trace.get()
    if tracer is None:
        return None
    return TraceContext(trace_id=tracer.trace_id or "", worker=worker)


def attach(context: TraceContext | dict[str, Any] | None) -> Tracer | None:
    """Install (and return) a fresh worker tracer seeded with ``context``.

    ``None`` (tracing disabled in the parent) detaches any inherited
    tracer instead — fork-started workers must not keep recording into
    the parent's span list.
    """
    from repro.obs import trace

    if context is None:
        trace.TRACER = None
        return None
    if isinstance(context, dict):
        context = TraceContext.from_dict(context)
    tracer = Tracer(trace_id=context.trace_id or None)
    trace.TRACER = tracer
    return tracer


def ship(tracer: Tracer | None) -> dict[str, Any] | None:
    """Pack a worker tracer's output into a picklable shipment document."""
    if tracer is None:
        return None
    return {
        "trace_id": tracer.trace_id or "",
        "spans": [span.to_dict() for span in tracer.spans],
        "events_fired": tracer.events_fired,
        "processes_spawned": tracer.processes_spawned,
    }


def merge_shipment(parent: Tracer, shipment: dict[str, Any] | None,
                   parent_span: Span | int | None = None,
                   worker: str = "") -> list[Span]:
    """Fold a worker's shipment into ``parent``; returns the merged spans.

    Worker-local span ids are remapped onto the parent's id sequence in
    the order the worker recorded them (deterministic: the worker's
    recording order is seed-derived, and the caller merges shipments in
    submission order).  Worker root spans are re-parented under
    ``parent_span``; every merged span gets a ``worker`` attribute so
    per-worker breakdowns survive the merge.
    """
    if shipment is None:
        return []
    parent_id = (parent_span.span_id if isinstance(parent_span, Span)
                 else parent_span)
    id_map: dict[int, int] = {}
    merged: list[Span] = []
    for doc in shipment["spans"]:
        span = Span.from_dict(doc)
        new_id = parent._next_id
        parent._next_id += 1
        id_map[span.span_id] = new_id
        span.span_id = new_id
        if span.parent_id is None:
            span.parent_id = parent_id
        else:
            # A dangling parent reference (span recorded before its
            # parent crossed a shipment boundary) falls back to the
            # merge root instead of pointing at an unrelated parent span.
            span.parent_id = id_map.get(span.parent_id, parent_id)
        span.trace_id = parent.trace_id
        if worker:
            span.attrs.setdefault("worker", worker)
        parent.spans.append(span)
        merged.append(span)
    parent.events_fired += int(shipment.get("events_fired", 0))
    parent.processes_spawned += int(shipment.get("processes_spawned", 0))
    return merged


def spill_spans(tracer: Tracer, path: str) -> int:
    """Append the tracer's *finished* spans to a JSONL spool and drop them.

    Long-lived shard workers call this between sync windows so tracing a
    million-event run keeps memory bounded: spans accumulate on disk in
    recording order and :func:`merge_spilled` folds the spool back into
    the parent at the end of the run.  Open spans stay buffered (their
    ``finish`` must still mutate the live object); a spilled span whose
    parent is still open therefore re-parents to the merge root, which
    is deterministic — the spill pattern depends only on the seed.

    Returns the number of spans spilled.
    """
    import json

    finished = [span for span in tracer.spans if span.end is not None]
    if not finished:
        return 0
    with open(path, "a", encoding="utf-8") as fh:
        for span in finished:
            fh.write(json.dumps(span.to_dict()) + "\n")
    tracer.spans = [span for span in tracer.spans if span.end is None]
    return len(finished)


def load_spilled(path: str) -> list[dict[str, Any]]:
    """Read a span spool written by :func:`spill_spans`, in spill order."""
    import json
    import os

    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def merge_spilled(parent: Tracer, shipment: dict[str, Any] | None,
                  parent_span: Span | int | None = None,
                  worker: str = "") -> list[Span]:
    """:func:`merge_shipment`, honouring a shipment's on-disk span spool.

    A shipment carrying ``spill_path`` merges the spooled spans first
    (they were recorded first), then the in-memory remainder, in one id
    remap so cross-references between the two resolve.
    """
    if shipment is not None and shipment.get("spill_path"):
        shipment = {
            **shipment,
            "spans": load_spilled(shipment["spill_path"]) + shipment["spans"],
        }
    return merge_shipment(parent, shipment, parent_span=parent_span,
                          worker=worker)


def wall_now(tracer: Tracer) -> float:
    """Wall seconds since the tracer's wall epoch (created on first use).

    All wall-clock spans of one invocation share this epoch, so the
    parent's phase spans and timings derived from worker monotonic
    timestamps land on one coherent timeline.
    """
    epoch = getattr(tracer, "wall_epoch", None)
    if epoch is None:
        epoch = time.monotonic()
        tracer.wall_epoch = epoch
    return time.monotonic() - epoch


def monotonic_to_wall(tracer: Tracer, t: float) -> float:
    """Convert a raw ``time.monotonic()`` stamp to tracer wall time."""
    epoch = getattr(tracer, "wall_epoch", None)
    if epoch is None:
        epoch = time.monotonic()
        tracer.wall_epoch = epoch
    return t - epoch
