"""The ``repro obs report`` surface: merged-run reports and Chrome traces.

Takes the artefacts one observed run leaves behind — a run manifest, a
(possibly multi-process) span trace, a metrics snapshot — and renders
them two ways:

* a **terminal report**: provenance, wall-clock phase breakdown with the
  critical path, per-worker span breakdowns (split into simulated-time
  and wall-clock domains), executor/cache health derived from the
  merged metrics (hit/miss rates, dedup savings, retries, quarantines,
  straggler skew), and the full metric table;
* a **Chrome trace-event JSON** (``--chrome-trace out.json``) loadable
  in Perfetto / ``about:tracing``.  The two clock domains become two
  trace "processes" (simulated time vs wall clock); within each, spans
  group into one track per worker label, so a ``--jobs 4`` sweep renders
  as four parallel lanes of queue-wait/execute/cache activity above the
  per-request simulated-time flame graphs they produced.

Only file contents are consulted, never live process state — the same
offline discipline as :mod:`repro.obs.summary`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from repro.obs.distributed import WALL_CLOCK
from repro.obs.manifest import RunManifest
from repro.obs.summary import render_metrics_table, render_span_summary
from repro.obs.trace import Span

__all__ = [
    "split_spans", "worker_breakdown", "executor_health", "service_health",
    "chrome_trace_doc", "save_chrome_trace", "render_report",
]

#: Synthetic pids for the two clock domains in Chrome trace output.
_PID_SIM = 1
_PID_WALL = 2


def split_spans(spans: Iterable[Span]) -> tuple[list[Span], list[Span]]:
    """Partition spans into (simulated-time, wall-clock) domains."""
    sim: list[Span] = []
    wall: list[Span] = []
    for span in spans:
        (wall if span.attrs.get("clock") == WALL_CLOCK else sim).append(span)
    return sim, wall


def worker_breakdown(spans: Iterable[Span]) -> dict[str, dict[str, float]]:
    """Per-worker span counts and busy time, keyed by the worker label.

    Spans without a ``worker`` attribute (recorded directly by the
    parent process) land under ``"main"``.
    """
    out: dict[str, dict[str, float]] = {}
    for span in spans:
        worker = str(span.attrs.get("worker", "main"))
        row = out.setdefault(worker, {"spans": 0.0, "sim_busy": 0.0,
                                      "wall_busy": 0.0})
        row["spans"] += 1
        if span.end is None:
            continue
        if span.attrs.get("clock") == WALL_CLOCK:
            row["wall_busy"] += span.duration
        else:
            row["sim_busy"] += span.duration
    return {worker: out[worker] for worker in sorted(out)}


def _metric_value(snapshot: dict[str, dict], name: str) -> float | None:
    doc = snapshot.get(name)
    return None if doc is None else float(doc.get("value", 0.0))


def executor_health(snapshot: dict[str, dict]) -> list[str]:
    """Health lines derived from the executor/cache metric namespaces.

    Reads the merged registry snapshot only; every line degrades to
    absence when the underlying metrics were never recorded.
    """
    lines: list[str] = []
    for prefix, label in (("parallel.cache", "run cache"),
                          ("parallel.modelcache", "model cache")):
        hits = _metric_value(snapshot, f"{prefix}.hits")
        misses = _metric_value(snapshot, f"{prefix}.misses")
        if hits is None and misses is None:
            continue
        hits, misses = hits or 0.0, misses or 0.0
        total = hits + misses
        rate = hits / total if total else 0.0
        lines.append(f"{label}: {int(hits)} hit(s) / {int(misses)} miss(es)"
                     f" ({rate:.0%} hit rate)")
    requested = _metric_value(snapshot, "parallel.runs_requested")
    deduped = _metric_value(snapshot, "parallel.runs_deduplicated")
    if requested:
        saved = (deduped or 0.0) / requested
        lines.append(f"dedup: {int(deduped or 0)} of {int(requested)} "
                     f"requested runs shared an execution ({saved:.0%} saved)")
    for name, label in (("parallel.retries", "run retries"),
                        ("parallel.timeouts", "run timeouts"),
                        ("parallel.quarantined", "runs quarantined"),
                        ("parallel.train.retries", "training retries"),
                        ("parallel.train.quarantined", "trainings quarantined")):
        value = _metric_value(snapshot, name)
        if value:
            lines.append(f"{label}: {int(value)}")
    skew = _metric_value(snapshot, "parallel.straggler_skew")
    if skew is not None:
        lines.append(f"straggler skew (slowest run / mean): {skew:.2f}x")
    workers = _metric_value(snapshot, "parallel.workers_used")
    if workers:
        busy = sorted(
            (float(doc.get("value", 0.0))
             for name, doc in snapshot.items()
             if name.startswith("parallel.worker_busy_seconds{")),
            reverse=True,
        )
        util = ""
        if busy:
            util = (", busy seconds per worker: "
                    + "/".join(f"{b:.2f}" for b in busy))
        lines.append(f"workers used: {int(workers)}{util}")
    return lines


def service_health(snapshot: dict[str, dict]) -> list[str]:
    """Health lines for the prediction service's ``serve.*`` namespace.

    Renders the degradation ladder (fresh/stale/masked/shed/duplicate
    resolution counts), the pressure-relief counters (backpressure,
    load shed, breaker trips, deadline misses, abandoned windows) and
    the batching economics (batches, mean batch size, latency
    percentiles).  Empty when the snapshot has no service metrics.
    """
    submitted = _metric_value(snapshot, "serve.submitted")
    if not submitted:
        return []
    lines = [f"windows submitted: {int(submitted)}"]
    ladder = []
    for status in ("fresh", "stale", "masked", "shed", "duplicate"):
        value = _metric_value(snapshot, f"serve.{status}") or 0.0
        ladder.append(f"{status} {int(value)} ({value / submitted:.0%})")
    lines.append("ladder: " + ", ".join(ladder))
    admitted = _metric_value(snapshot, "serve.tenants_admitted")
    rejected = _metric_value(snapshot, "serve.tenants_rejected")
    if admitted or rejected:
        lines.append(f"tenants: {int(admitted or 0)} admitted, "
                     f"{int(rejected or 0)} rejected")
    for name, label in (("serve.backpressure", "backpressure signals"),
                        ("serve.load_shed", "load-shed submissions"),
                        ("serve.breaker_trips", "circuit-breaker trips"),
                        ("serve.deadline_misses", "deadline misses"),
                        ("serve.abandoned_windows", "abandoned windows"),
                        ("serve.injected_stalls", "injected model stalls")):
        value = _metric_value(snapshot, name)
        if value:
            lines.append(f"{label}: {int(value)}")
    batches = snapshot.get("serve.batches")
    sizes = snapshot.get("serve.batch_size")
    if batches and sizes and sizes.get("count"):
        mean = sizes["sum"] / sizes["count"]
        lines.append(f"batches: {int(batches['value'])}, mean size "
                     f"{mean:.1f}, max {int(sizes['max'])}")
    latency = snapshot.get("serve.latency_seconds")
    if latency and latency.get("count"):
        lines.append(f"latency: mean {latency['mean'] * 1e3:.2f}ms, "
                     f"max {latency['max'] * 1e3:.2f}ms")
    return lines


# -- Chrome trace-event export ------------------------------------------------


def _chrome_events(spans: Iterable[Span]) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    tids: dict[tuple[int, str], int] = {}
    for span in spans:
        wall = span.attrs.get("clock") == WALL_CLOCK
        pid = _PID_WALL if wall else _PID_SIM
        worker = str(span.attrs.get("worker", "main"))
        tid = tids.setdefault((pid, worker), len(tids) + 1)
        args = {k: v for k, v in span.attrs.items() if k != "clock"}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event: dict[str, Any] = {
            "name": span.name,
            "cat": "wall" if wall else "sim",
            "pid": pid,
            "tid": tid,
            "ts": span.start * 1e6,  # trace-event timestamps are in µs
            "args": args,
        }
        if span.end is None:
            event["ph"] = "i"  # open span: an instant marker at its start
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (span.end - span.start) * 1e6
        events.append(event)
    # Name the synthetic processes/threads so Perfetto shows labels
    # instead of bare numbers.
    meta: list[dict[str, Any]] = []
    for pid, name in ((_PID_SIM, "simulated time"), (_PID_WALL, "wall clock")):
        if any(e["pid"] == pid for e in events):
            meta.append({"ph": "M", "name": "process_name", "pid": pid,
                         "tid": 0, "args": {"name": name}})
    for (pid, worker), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                     "tid": tid, "args": {"name": worker}})
    return meta + events


def chrome_trace_doc(spans: Iterable[Span],
                     trace_id: str | None = None) -> dict[str, Any]:
    """A Chrome trace-event document (JSON object format) for ``spans``."""
    doc: dict[str, Any] = {
        "traceEvents": _chrome_events(spans),
        "displayTimeUnit": "ms",
    }
    if trace_id:
        doc["otherData"] = {"trace_id": trace_id}
    return doc


def save_chrome_trace(spans: Iterable[Span], path: str | pathlib.Path,
                      trace_id: str | None = None) -> pathlib.Path:
    """Write spans as Chrome trace-event JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace_doc(spans, trace_id=trace_id),
                               sort_keys=True) + "\n")
    return path


# -- terminal report ----------------------------------------------------------


def _render_profile(profile: dict[str, dict]) -> list[str]:
    """Phase table + critical path from a manifest's stored profile summary."""
    lines = [f"{'phase':<44}{'count':>6}{'total_s':>10}{'self_s':>10}"]
    lines.append("-" * len(lines[0]))
    for path in sorted(profile):
        row = profile[path]
        depth = path.count("/")
        label = "  " * depth + path.rpartition("/")[2]
        lines.append(f"{label:<44}{int(row.get('count', 0)):>6}"
                     f"{row.get('total', 0.0):>10.3f}"
                     f"{row.get('self', 0.0):>10.3f}")
    # Critical path: heaviest child at each level, from the stored totals.
    crit: list[str] = []
    prefix = ""
    while True:
        candidates = {p: r for p, r in profile.items()
                      if p.rpartition("/")[0] == prefix}
        if not candidates:
            break
        best = min(candidates.items(),
                   key=lambda kv: (-kv[1].get("total", 0.0), kv[0]))
        crit.append(f"{best[0].rpartition('/')[2]} {best[1].get('total', 0.0):.3f}s")
        prefix = best[0]
    if crit:
        lines.append("critical path: " + " > ".join(crit))
    return lines


def render_report(manifest: RunManifest | None = None,
                  spans: list[Span] | None = None,
                  metrics: dict[str, dict] | None = None) -> str:
    """The full terminal report for whichever artefacts were supplied."""
    sections: list[str] = []
    if manifest is not None:
        lines = [f"run:        {manifest.name}",
                 f"seed:       {manifest.seed}",
                 f"created:    {manifest.created_at}",
                 f"git:        {manifest.git_sha or '(not a git checkout)'}"]
        if manifest.trace_id:
            lines.append(f"trace id:   {manifest.trace_id}")
        if manifest.timings:
            timing = ", ".join(f"{k}={v:.2f}s"
                               for k, v in sorted(manifest.timings.items()))
            lines.append(f"timings:    {timing}")
        sections.append("\n".join(lines))
        profile = manifest.extra.get("profile")
        if profile:
            sections.append("-- wall-clock phases --\n"
                            + "\n".join(_render_profile(profile)))
        if metrics is None and manifest.metrics:
            metrics = manifest.metrics
    if spans is not None:
        sim, wall = split_spans(spans)
        if wall:
            sections.append("-- wall-clock spans (jobs, phases) --\n"
                            + render_span_summary(wall))
        if sim:
            sections.append("-- simulated-time spans --\n"
                            + render_span_summary(sim))
        workers = worker_breakdown(spans)
        if len(workers) > 1 or (workers and "main" not in workers):
            rows = [
                f"  {worker:<16} {int(row['spans']):>7} spans"
                f"  sim {row['sim_busy']:>10.4f}s"
                f"  wall {row['wall_busy']:>8.3f}s"
                for worker, row in workers.items()
            ]
            sections.append("-- per-worker breakdown --\n" + "\n".join(rows))
    if metrics:
        health = executor_health(metrics)
        if health:
            sections.append("-- executor / cache health --\n"
                            + "\n".join(f"  {line}" for line in health))
        serving = service_health(metrics)
        if serving:
            sections.append("-- prediction service --\n"
                            + "\n".join(f"  {line}" for line in serving))
        sections.append("-- metrics --\n" + render_metrics_table(metrics))
    if not sections:
        return "(nothing to report: no manifest, trace or metrics supplied)"
    return "\n\n".join(sections)
