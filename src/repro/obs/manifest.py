"""Run manifests: one JSON document that makes a result reproducible.

The paper's pipeline is offline — traces are collected on the cluster
and labelled later on the training server — which only works because
every artefact carries enough context to re-derive it.  A
:class:`RunManifest` gives our experiments the same property: every
entry point stamps its output with the seed, the full configuration, the
git revision and package version that produced it, per-tier wall-clock
timings, and a metrics snapshot, so ``python -m repro obs manifest.json``
can answer "what exactly produced this file?" from the file alone.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import pathlib
import platform
import subprocess
import sys
from typing import Any, Mapping

from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = [
    "MANIFEST_KIND", "RunManifest", "git_revision", "jsonable",
    "config_to_dict", "build_manifest", "write_manifest", "load_manifest",
]

MANIFEST_KIND = "repro-manifest"
_FORMAT_VERSION = 1


def git_revision() -> str | None:
    """The repository HEAD SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def jsonable(value: Any) -> Any:
    """Best-effort conversion of config values to JSON-safe types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


#: Backwards-compatible alias (pre-1.1 internal name).
_jsonable = jsonable


def config_to_dict(config: Any) -> dict[str, Any]:
    """Flatten any config (dataclass, mapping, object) to a JSON dict."""
    out = jsonable(config)
    if not isinstance(out, dict):
        out = {"value": out}
    return out


@dataclasses.dataclass
class RunManifest:
    """Provenance record of one experiment execution."""

    name: str
    seed: int
    config: dict[str, Any]
    created_at: str
    git_sha: str | None
    version: str
    python: str
    platform: str
    #: Wall-clock seconds per tier/phase (e.g. {"run": 12.3}).
    timings: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Metrics-registry snapshot taken when the manifest was built.
    metrics: dict[str, dict] = dataclasses.field(default_factory=dict)
    extra: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Distributed trace id of the execution (when tracing was on).
    #: Optional with a default so manifests written before trace
    #: propagation existed still load.
    trace_id: str | None = None

    def to_dict(self) -> dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc["kind"] = MANIFEST_KIND
        doc["format_version"] = _FORMAT_VERSION
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunManifest":
        if doc.get("kind") not in (None, MANIFEST_KIND):
            raise ValueError(f"not a repro manifest: kind={doc.get('kind')!r}")
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in fields})


def build_manifest(
    name: str,
    seed: int,
    config: Any,
    timings: Mapping[str, float] | None = None,
    extra: Mapping[str, Any] | None = None,
    registry: MetricsRegistry | None = None,
    trace_id: str | None = None,
) -> RunManifest:
    """Assemble a manifest for ``name`` from the current process state.

    ``trace_id`` defaults to the installed tracer's id (when a tracer is
    recording), tying the manifest to the trace file it was written
    alongside.
    """
    from repro import __version__
    from repro.obs import trace as _trace

    if trace_id is None and _trace.TRACER is not None:
        trace_id = _trace.TRACER.trace_id
    reg = REGISTRY if registry is None else registry
    return RunManifest(
        name=name,
        seed=int(seed),
        config=config_to_dict(config),
        created_at=datetime.datetime.now(datetime.timezone.utc).isoformat(),
        git_sha=git_revision(),
        version=__version__,
        python=sys.version.split()[0],
        platform=platform.platform(),
        timings={k: float(v) for k, v in (timings or {}).items()},
        metrics=reg.snapshot(),
        extra=dict(extra or {}),
        trace_id=trace_id,
    )


def write_manifest(manifest: RunManifest,
                   path: str | pathlib.Path) -> pathlib.Path:
    """Write a manifest as indented JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest.to_dict(), indent=2, sort_keys=True)
                    + "\n")
    return path


def load_manifest(path: str | pathlib.Path) -> RunManifest:
    """Read a manifest written by :func:`write_manifest`."""
    return RunManifest.from_dict(json.loads(pathlib.Path(path).read_text()))
