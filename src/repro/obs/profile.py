"""Lightweight wall-clock phase profiler with hierarchical attribution.

The span tracer answers "where did *simulated* time go inside a run";
this module answers the operator's other question — "where did my
*wall-clock* minutes go across a whole invocation": dataset sweeps,
cache probes, training batches, report writing.  A
:class:`PhaseProfiler` is a stack of nested named timers.  Each
``with profiler.phase("sweep"):`` block records one :class:`PhaseRecord`
whose *path* ("dataset/sweep/execute") encodes its position in the
nesting, so the summary can attribute both total and self time per
phase and extract the critical path (the chain of heaviest children
from the root).

Like the tracer, nothing is installed by default: instrumentation sites
call :func:`phase`, which is a no-op context manager while no profiler
is installed — one module-global load and a ``None`` test.  When a
tracer *is* recording, a profiler created with ``tracer=`` mirrors every
finished phase into it as a wall-clock span (``attrs["clock"]="wall"``),
so phases appear on the merged timeline and in Chrome trace exports.

Timestamps come from ``time.monotonic()`` relative to the profiler's
epoch; phase *paths* and record order are deterministic (code order),
durations obviously are not — see the determinism note in DESIGN.md §11.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.trace import Span, Tracer

__all__ = [
    "PhaseRecord", "PhaseProfiler", "PROFILER",
    "install", "uninstall", "get", "profiling", "phase",
]

_SEP = "/"


@dataclass
class PhaseRecord:
    """One completed timer: its nesting path and wall interval."""

    path: str
    start: float
    end: float
    attrs: dict[str, Any]

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def depth(self) -> int:
        return self.path.count(_SEP) + 1

    def to_dict(self) -> dict[str, Any]:
        return {"path": self.path, "start": self.start, "end": self.end,
                "attrs": self.attrs}


class PhaseProfiler:
    """Nested wall-clock timers; records land in chronological end order.

    Pass ``tracer`` to mirror every finished phase into it as a
    wall-clock span on the shared ``wall_epoch`` timeline.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.records: list[PhaseRecord] = []
        self.tracer = tracer
        self._epoch = time.monotonic()
        #: (name, start, attrs, parent_span) of currently-open phases.
        self._stack: list[tuple[str, float, dict[str, Any], Span | None]] = []

    def _now(self) -> float:
        return time.monotonic() - self._epoch

    @contextmanager
    def phase(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time a block; nesting under any phase already open."""
        if _SEP in name:
            raise ValueError(f"phase name may not contain {_SEP!r}: {name!r}")
        start = self._now()
        parent_span = self._stack[-1][3] if self._stack else None
        span = None
        if self.tracer is not None:
            from repro.obs.distributed import WALL_CLOCK, wall_now

            span = self.tracer.start(f"phase.{name}", wall_now(self.tracer),
                                     parent=parent_span, clock=WALL_CLOCK,
                                     **attrs)
        self._stack.append((name, start, dict(attrs), span))
        try:
            yield
        finally:
            name, start, attrs, span = self._stack.pop()
            path = _SEP.join([*(n for n, _, _, _ in self._stack), name])
            self.records.append(PhaseRecord(path, start, self._now(), attrs))
            if span is not None:
                from repro.obs.distributed import wall_now

                self.tracer.finish(span, wall_now(self.tracer))

    # -- reporting --------------------------------------------------------

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-path aggregates: count, total and self wall seconds.

        ``self`` is the phase's total minus the total of its *direct*
        children — the time the phase spent outside any named sub-phase.
        """
        out: dict[str, dict[str, float]] = {}
        for rec in self.records:
            row = out.setdefault(rec.path, {"count": 0.0, "total": 0.0})
            row["count"] += 1
            row["total"] += rec.duration
        for path, row in out.items():
            children = sum(
                other["total"] for other_path, other in out.items()
                if other_path.rpartition(_SEP)[0] == path
            )
            row["self"] = max(0.0, row["total"] - children)
        return {path: out[path] for path in sorted(out)}

    def critical_path(self) -> list[tuple[str, float]]:
        """The chain of heaviest phases from the root down.

        At each level the child with the largest total wall time wins;
        the result is the sequence an optimiser should look at first.
        """
        summary = self.summary()
        path: list[tuple[str, float]] = []
        prefix = ""
        while True:
            candidates = {
                p: row for p, row in summary.items()
                if p.rpartition(_SEP)[0] == prefix
            }
            if not candidates:
                break
            # Deterministic tie-break: alphabetical on equal totals.
            best = min(candidates.items(), key=lambda kv: (-kv[1]["total"], kv[0]))
            path.append((best[0], best[1]["total"]))
            prefix = best[0]
        return path

    def render(self) -> str:
        """Indented per-phase table, nesting shown by path depth."""
        summary = self.summary()
        if not summary:
            return "(no phases recorded)"
        lines = [f"{'phase':<44}{'count':>6}{'total_s':>10}{'self_s':>10}"]
        lines.append("-" * len(lines[0]))
        for path, row in summary.items():
            depth = path.count(_SEP)
            label = "  " * depth + path.rpartition(_SEP)[2]
            lines.append(f"{label:<44}{int(row['count']):>6}"
                         f"{row['total']:>10.3f}{row['self']:>10.3f}")
        crit = self.critical_path()
        if crit:
            chain = " > ".join(f"{p.rpartition(_SEP)[2]} {t:.3f}s"
                               for p, t in crit)
            lines.append(f"critical path: {chain}")
        return "\n".join(lines)


#: The process-wide profiler; ``None`` (the default) disables profiling.
PROFILER: PhaseProfiler | None = None


def install(profiler: PhaseProfiler | None = None,
            tracer: Tracer | None = None) -> PhaseProfiler:
    """Install (and return) a profiler as the process-wide recorder."""
    global PROFILER
    PROFILER = profiler if profiler is not None else PhaseProfiler(tracer)
    return PROFILER


def uninstall() -> PhaseProfiler | None:
    """Remove the process-wide profiler; returns the one removed."""
    global PROFILER
    profiler, PROFILER = PROFILER, None
    return profiler


def get() -> PhaseProfiler | None:
    """The installed profiler, or ``None`` when profiling is off."""
    return PROFILER


@contextmanager
def profiling(profiler: PhaseProfiler | None = None,
              tracer: Tracer | None = None) -> Iterator[PhaseProfiler]:
    """``with profiling() as p:`` — install for the block, restore after."""
    global PROFILER
    previous = PROFILER
    installed = install(profiler, tracer)
    try:
        yield installed
    finally:
        PROFILER = previous


@contextmanager
def phase(name: str, **attrs: Any) -> Iterator[None]:
    """Time a block under the installed profiler; no-op when none is."""
    profiler = PROFILER
    if profiler is None:
        yield
        return
    with profiler.phase(name, **attrs):
        yield
