"""Stdlib-``logging`` wiring for the ``repro`` namespace.

Every module logs through ``logging.getLogger("repro.<module>")`` via
:func:`get_logger`; nothing is emitted until an application (or the CLI)
calls :func:`configure_logging`, which attaches one stream handler to the
``repro`` root logger.  Library code therefore stays silent by default —
the stdlib's null-handling swallows unconfigured records — while any
entry point can turn on INFO/DEBUG visibility with one line.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["get_logger", "configure_logging"]

_ROOT = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("experiments.runner")`` and
    ``get_logger("repro.experiments.runner")`` name the same logger.
    """
    if not name or name == _ROOT:
        return logging.getLogger(_ROOT)
    if name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def configure_logging(level: int | str = "INFO",
                      stream: IO[str] | None = None) -> logging.Logger:
    """Enable ``repro.*`` log output at ``level``; returns the root logger.

    Idempotent: calling again adjusts the level (and stream, if given)
    of the handler installed earlier instead of stacking duplicates —
    repeated CLI invocations in one process (``main(...)`` called twice,
    ``repro obs -v`` after ``repro table1 -v``) emit each record once.
    Should duplicates exist anyway (e.g. a pickled/forked logger tree),
    the extras are removed before reuse.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = resolved
    root = logging.getLogger(_ROOT)
    root.setLevel(level)
    ours = [h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)]
    for extra in ours[1:]:
        root.removeHandler(extra)
    handler = ours[0] if ours else None
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_obs_handler = True  # type: ignore[attr-defined]
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)  # type: ignore[attr-defined]
    handler.setLevel(level)
    return root
