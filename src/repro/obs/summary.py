"""Human-readable rendering of exported observability artefacts.

Backs the ``python -m repro obs`` subcommand: given a trace JSONL, a
metrics JSON or a run manifest, produce the plain-text tables an operator
wants first — where simulated time went per span kind, what every
counter/histogram ended at, and which code/config/seed produced a result
directory.  Only file contents are consulted, never live process state.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.obs.export import (
    METRICS_KIND, TRACE_KIND, load_metrics, load_trace,
)
from repro.obs.manifest import MANIFEST_KIND, RunManifest, load_manifest
from repro.obs.trace import Span, Tracer

__all__ = [
    "render_span_summary", "render_metrics_table", "render_manifest",
    "sniff_kind", "summarise_file",
]


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_span_summary(spans: Iterable[Span]) -> str:
    """Per-name span aggregates, busiest first (by total span time).

    The headline names the clock: "simulated span-seconds" for pure
    sim-clock traces, "wall span-seconds" when every span is wall-clock
    (``attrs["clock"] == "wall"``), and plain "span-seconds" for mixed
    traces (pre-split them with :func:`repro.obs.report.split_spans` for
    per-domain tables).
    """
    tracer = Tracer()
    tracer.spans = list(spans)
    summary = tracer.summary()
    if not summary:
        return "(no finished spans)"
    rows = [
        [name, f"{int(agg['count'])}", f"{agg['total']:.6f}",
         f"{agg['mean']:.6f}", f"{agg['max']:.6f}"]
        for name, agg in sorted(summary.items(),
                                key=lambda kv: -kv[1]["total"])
    ]
    total = sum(agg["total"] for agg in summary.values())
    clocks = {s.attrs.get("clock") for s in tracer.spans}
    unit = ("wall span-seconds" if clocks == {"wall"}
            else "simulated span-seconds" if "wall" not in clocks
            else "span-seconds")
    table = _table(["span", "count", "total_s", "mean_s", "max_s"], rows)
    return f"{len(tracer.spans)} spans, {total:.6f} {unit}\n" + table


def _metric_row(name: str, data: dict) -> list[str]:
    kind = data.get("kind", "?")
    if kind == "histogram":
        detail = (f"count={data['count']} sum={data['sum']:.6g} "
                  f"mean={data['mean']:.6g}")
        if data.get("count"):
            detail += f" min={data['min']:.6g} max={data['max']:.6g}"
        return [name, kind, detail]
    return [name, kind, f"{data.get('value', 0.0):.6g}"]


def render_metrics_table(snapshot: dict[str, dict]) -> str:
    """All metrics of one snapshot as a name/kind/value table."""
    if not snapshot:
        return "(no metrics recorded)"
    rows = [_metric_row(name, snapshot[name]) for name in sorted(snapshot)]
    return _table(["metric", "kind", "value"], rows)


def render_manifest(manifest: RunManifest) -> str:
    """Provenance summary plus the embedded metric table."""
    lines = [
        f"run:        {manifest.name}",
        f"seed:       {manifest.seed}",
        f"created:    {manifest.created_at}",
        f"git:        {manifest.git_sha or '(not a git checkout)'}",
        f"version:    repro {manifest.version} / python {manifest.python}",
        f"platform:   {manifest.platform}",
    ]
    if manifest.trace_id:
        lines.insert(4, f"trace id:   {manifest.trace_id}")
    if manifest.timings:
        timing = ", ".join(f"{k}={v:.2f}s"
                           for k, v in sorted(manifest.timings.items()))
        lines.append(f"timings:    {timing}")
    if manifest.config:
        lines.append("config:")
        for key in sorted(manifest.config):
            lines.append(f"  {key} = {manifest.config[key]!r}")
    if manifest.extra:
        lines.append(f"extra:      {json.dumps(manifest.extra, sort_keys=True)}")
    if manifest.metrics:
        lines.append("")
        lines.append(render_metrics_table(manifest.metrics))
    return "\n".join(lines)


def sniff_kind(path: str | pathlib.Path) -> str:
    """Identify an exported file: ``trace``, ``metrics`` or ``manifest``."""
    path = pathlib.Path(path)
    with open(path) as fp:
        first = fp.readline().strip()
    if first.startswith("{") and first.endswith("}"):
        # JSONL traces carry their kind on line one; whole-file JSON
        # documents may not fit on one line, so fall through to a full load.
        try:
            kind = json.loads(first).get("kind")
        except json.JSONDecodeError:
            kind = None
        if kind == TRACE_KIND:
            return "trace"
    doc = json.loads(path.read_text())
    kind = doc.get("kind")
    if kind == METRICS_KIND:
        return "metrics"
    if kind == MANIFEST_KIND:
        return "manifest"
    raise ValueError(f"{path}: not a recognised repro observability file")


def summarise_file(path: str | pathlib.Path) -> str:
    """Render whichever artefact ``path`` holds."""
    kind = sniff_kind(path)
    if kind == "trace":
        return render_span_summary(load_trace(path))
    if kind == "metrics":
        return render_metrics_table(load_metrics(path))
    return render_manifest(load_manifest(path))
