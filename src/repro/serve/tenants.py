"""Simulated tenant population + the chaos soak harness.

A tenant here is one coroutine replaying a deterministic stream of
per-window vectors against a :class:`~repro.serve.service.PredictionService`
— the stand-in for one monitored application's
:class:`~repro.core.online.StreamingPredictor` shipping its assembled
vectors to the shared service instead of scoring locally.  The stream
itself is pure function of ``(seed, tenant)`` (:func:`tenant_windows`),
so a test can regenerate any tenant's exact input and check the service
returned the exact bits a private scorer would have.

Chaos comes from :class:`repro.faults.ServiceFaultPlan`: each tenant
asks the plan for its profile and then *misbehaves accordingly* —
floods (shrunk think time), stalls mid-stream, disconnects, delivers
out of order or twice.  :class:`Backpressure` is handled the way a real
client would: jittered exponential backoff
(:func:`repro.parallel.backoff_delay`) with the jitter drawn from the
tenant's own derived RNG, so the whole soak replays bit-identically.

:func:`run_soak` drives N tenants concurrently, drains the service, and
folds everything into a :class:`SoakReport` whose headline invariant is
**total accounting**: every admitted-or-rejected tenant lands in exactly
one terminal state (``served`` / ``degraded`` / ``shed`` / ``error``),
and ``error`` staying empty is the harness's zero-unhandled-exceptions
guarantee.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import derive_rng
from repro.faults.service import ServiceFaultPlan, TenantProfile
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.parallel.supervise import backoff_delay
from repro.serve.service import (
    Backpressure,
    PredictionService,
    Rejected,
    ServeConfig,
    WindowResult,
)

__all__ = ["SoakReport", "TenantOutcome", "run_soak", "tenant_windows"]

logger = get_logger("serve.tenants")

#: Base seconds for the client-side backpressure backoff.
_RETRY_BASE = 0.005
#: Cap on one backoff sleep (a soak should not stall on a single retry).
_RETRY_CAP = 0.25

#: Terminal states every tenant must land in (the accounting contract).
TERMINAL_STATES = ("served", "degraded", "shed", "error")


def tenant_windows(seed: int, tenant: str, n_windows: int,
                   n_servers: int, n_features: int) -> np.ndarray:
    """This tenant's deterministic raw vector stream.

    Pure function of the arguments: the soak driver and a bit-identity
    test regenerate the same ``(n_windows, n_servers, n_features)``
    array independently.  Magnitudes are scaled to look like z-scorable
    monitor features rather than unit noise.
    """
    rng = derive_rng(seed, "serve-windows", tenant)
    return 10.0 * rng.standard_normal((n_windows, n_servers, n_features))


@dataclass
class TenantOutcome:
    """Everything one tenant experienced, plus its terminal state."""

    tenant: str
    profile: TenantProfile
    admitted: bool
    #: Results in window order (duplicates carry their window id too).
    results: list[WindowResult] = field(default_factory=list)
    backpressure_retries: int = 0
    #: False when the tenant disconnected (by chaos) before finishing.
    completed: bool = True
    #: repr of an unhandled exception; must stay ``None`` in any soak.
    error: str | None = None

    @property
    def terminal(self) -> str:
        """One of :data:`TERMINAL_STATES`."""
        if self.error is not None:
            return "error"
        if not self.admitted:
            return "shed"
        if all(r.status in ("fresh", "duplicate") for r in self.results):
            return "served"
        return "degraded"

    def results_for(self, window: int) -> list[WindowResult]:
        return [r for r in self.results if r.window == window]


@dataclass
class SoakReport:
    """What a whole soak did, in one JSON-ready record."""

    n_tenants: int
    n_windows: int
    plan_digest: str | None
    elapsed: float
    outcomes: list[TenantOutcome] = field(default_factory=list)
    drain: dict[str, int] = field(default_factory=dict)

    @property
    def terminal_counts(self) -> dict[str, int]:
        counts = {state: 0 for state in TERMINAL_STATES}
        for outcome in self.outcomes:
            counts[outcome.terminal] += 1
        return counts

    @property
    def errors(self) -> list[str]:
        return [f"{o.tenant}: {o.error}" for o in self.outcomes
                if o.error is not None]

    @property
    def status_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for outcome in self.outcomes:
            for result in outcome.results:
                totals[result.status] = totals.get(result.status, 0) + 1
        return totals

    @property
    def windows_served(self) -> int:
        return sum(self.status_totals.values())

    @property
    def throughput(self) -> float:
        """Resolved windows per wall-clock second."""
        return self.windows_served / self.elapsed if self.elapsed else 0.0

    def to_dict(self) -> dict:
        latency = REGISTRY.histogram("serve.latency_seconds")
        return {
            "n_tenants": self.n_tenants,
            "n_windows": self.n_windows,
            "plan_digest": self.plan_digest,
            "elapsed_seconds": self.elapsed,
            "windows_resolved": self.windows_served,
            "windows_per_second": self.throughput,
            "latency_p50_seconds": latency.quantile(0.5),
            "latency_p99_seconds": latency.quantile(0.99),
            "terminal": self.terminal_counts,
            "statuses": self.status_totals,
            "drain": self.drain,
            "errors": self.errors,
        }


async def _submit_with_retry(session, window: int, vector: np.ndarray,
                             rng, outcome: TenantOutcome) -> WindowResult:
    """One delivery, retrying through backpressure like a real client."""
    attempt = 0
    while True:
        try:
            return await session.submit(window, vector)
        except Backpressure:
            outcome.backpressure_retries += 1
            await asyncio.sleep(backoff_delay(
                _RETRY_BASE, attempt, cap=_RETRY_CAP,
                jitter=float(rng.random())))
            attempt += 1


async def _drive_tenant(service: PredictionService,
                        plan: ServiceFaultPlan | None, tenant: str,
                        windows: np.ndarray, think: float) -> TenantOutcome:
    """One tenant's whole life, chaos included.  Never raises."""
    n_windows = len(windows)
    profile = (plan.tenant_profile(tenant, n_windows) if plan is not None
               else TenantProfile(tenant=tenant))
    outcome = TenantOutcome(tenant=tenant, profile=profile, admitted=False)
    rng = derive_rng(0 if plan is None else plan.seed, "serve-client",
                     tenant)
    try:
        try:
            session = service.connect(tenant)
        except Rejected:
            return outcome
        outcome.admitted = True
        my_think = think / profile.flood_factor
        order = (plan.delivery_order(profile, n_windows)
                 if plan is not None else list(range(n_windows)))
        # A reordering tenant must pipeline: awaiting an out-of-order
        # window before sending its predecessors would deadlock against
        # the service's own reorder buffer.  A flooding tenant pipelines
        # because that is what a flood is — submissions outrunning
        # responses (it is also the only way the per-tenant queue bound,
        # hence backpressure, can ever be hit).  Well-behaved tenants
        # submit strictly sequentially — the regime whose results a
        # standalone scorer must match bit for bit.
        pipelined = profile.reorders or profile.floods
        inflight: list[asyncio.Task] = []
        disconnected = False
        for step, window in enumerate(order):
            if profile.disconnects_at is not None \
                    and step >= profile.disconnects_at:
                disconnected = True
                outcome.completed = False
                break
            if profile.stalls_at is not None and step == profile.stalls_at:
                await asyncio.sleep(max(think, 0.001)
                                    * profile.stall_windows)
            deliveries = 1
            if plan is not None and plan.duplicates_window(profile, window):
                deliveries = 2
            for _ in range(deliveries):
                if pipelined:
                    inflight.append(asyncio.ensure_future(
                        _submit_with_retry(session, window,
                                           windows[window], rng, outcome)))
                else:
                    outcome.results.append(await _submit_with_retry(
                        session, window, windows[window], rng, outcome))
            if my_think > 0:
                await asyncio.sleep(my_think)
            elif pipelined:
                # Even a full-speed pipeliner must yield so its own
                # submissions (and the batcher) get to run.
                await asyncio.sleep(0)
        if inflight:
            if disconnected:
                # A vanished client does not wait for its pipeline: keep
                # what already resolved, abandon the rest.  Undelivered
                # predecessors mean some pipelined windows can never
                # flush from the service's reorder buffer — the drain
                # sheds them; awaiting them here would deadlock.
                await asyncio.sleep(0)
                for task in inflight:
                    if task.done():
                        outcome.results.append(task.result())
                    else:
                        task.cancel()
            else:
                outcome.results.extend(await asyncio.gather(*inflight))
            outcome.results.sort(key=lambda r: r.window)
    except Exception as exc:  # noqa: BLE001 — the soak must account, not raise
        outcome.error = f"{type(exc).__name__}: {exc}"
        logger.error("tenant %s crashed: %s", tenant, outcome.error)
    return outcome


async def _soak(scorer, n_tenants: int, n_windows: int,
                config: ServeConfig, plan: ServiceFaultPlan | None,
                seed: int, think: float) -> SoakReport:
    service = PredictionService(scorer, config, fault_plan=plan)
    await service.start()
    t0 = time.perf_counter()
    streams = {
        f"tenant{i:04d}": tenant_windows(seed, f"tenant{i:04d}", n_windows,
                                         scorer.n_servers,
                                         scorer.n_features)
        for i in range(n_tenants)
    }
    outcomes = await asyncio.gather(*(
        _drive_tenant(service, plan, tenant, stream, think)
        for tenant, stream in streams.items()
    ))
    drain = await service.stop()
    report = SoakReport(
        n_tenants=n_tenants,
        n_windows=n_windows,
        plan_digest=None if plan is None else plan.digest(),
        elapsed=time.perf_counter() - t0,
        outcomes=list(outcomes),
        drain=drain,
    )
    counts = report.terminal_counts
    logger.info(
        "soak: %d tenants x %d windows -> served=%d degraded=%d shed=%d "
        "error=%d (%.0f windows/s)", n_tenants, n_windows,
        counts["served"], counts["degraded"], counts["shed"],
        counts["error"], report.throughput,
    )
    return report


def run_soak(scorer, *, n_tenants: int, n_windows: int = 8,
             config: ServeConfig | None = None,
             plan: ServiceFaultPlan | None = None, seed: int = 0,
             think: float = 0.0) -> SoakReport:
    """Drive ``n_tenants`` concurrent tenants through one service.

    ``scorer`` is a :class:`~repro.core.predictor.DeployedPredictor`;
    ``plan`` (optional) injects deterministic chaos; ``think`` is the
    nominal seconds between one tenant's windows (floods divide it).
    Blocking entry point — owns its own event loop.
    """
    if n_tenants < 1:
        raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
    if n_windows < 1:
        raise ValueError(f"n_windows must be >= 1, got {n_windows}")
    if think < 0:
        raise ValueError(f"think must be >= 0, got {think}")
    return asyncio.run(_soak(scorer, n_tenants, n_windows,
                             config or ServeConfig(), plan, seed, think))
