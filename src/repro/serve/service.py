"""The multi-tenant prediction service core.

One asyncio event loop owns everything: tenants (coroutines, or anything
that can await) connect, submit raw per-window vectors and await
results; a single batcher task drains the per-tenant queues round-robin
into micro-batches and scores each batch in one fused forward pass.
Because scoring runs through
:meth:`repro.core.predictor.DeployedPredictor.predict_proba_rows`, a
tenant's bits never depend on who else landed in its batch — the service
is semantically N private scorers that happen to share their matmuls.

**The degradation ladder.**  Every submitted window resolves to exactly
one status, ordered from best to worst:

``fresh``
    scored this window's vector through the model;
``stale``
    missed its deadline (or arrived while the breaker probes) — the
    tenant's last good probabilities are repeated, like
    :class:`repro.core.online.StreamingPredictor`'s completeness
    fallback;
``masked``
    no usable answer: breaker open, no last-good to repeat, or the
    window arrived too late / out of reorder range;
``shed``
    refused — global backlog past the shed bound, or still queued when
    the drain budget expired;
``duplicate``
    the tenant already submitted this window; the previous answer's
    probabilities are repeated without scoring.

``fresh`` and ``duplicate`` are healthy; everything else marks the
tenant degraded.  The per-tenant **circuit breaker** counts consecutive
unhealthy resolutions: at ``breaker_threshold`` it opens and the tenant
fast-fails to ``masked`` (or ``stale``) for ``breaker_cooldown``
seconds — protecting the batcher from a tenant whose traffic can no
longer be served — then half-opens to let one probe window through; a
fresh probe closes it.

All waiting is wall-clock (``time.monotonic``): unlike the simulator's
tracer this is a real service loop, so deadlines and cooldowns are real
seconds.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.faults.service import ServiceFaultPlan
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY

__all__ = [
    "Backpressure",
    "PredictionService",
    "Rejected",
    "ServeConfig",
    "TenantSession",
    "WindowResult",
    "STATUSES",
]

logger = get_logger("serve.service")

#: Every status a submitted window can resolve to.
STATUSES = ("fresh", "stale", "masked", "shed", "duplicate")

#: Statuses that do not trip the circuit breaker.
_HEALTHY = frozenset({"fresh", "duplicate"})

#: Idle poll while the batcher waits for work (seconds).
_IDLE_WAIT = 0.05

#: Buckets for the ``serve.batch_size`` histogram — anything reading the
#: histogram back must register with the same boundaries.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Backpressure(RuntimeError):
    """This tenant's ingest queue is full — back off and retry.

    Raised from :meth:`TenantSession.submit` *before* the window is
    accepted, so the submission had no effect.  Backpressure is
    per-tenant and transient; clients retry with jittered exponential
    backoff (:func:`repro.parallel.backoff_delay`).
    """


class Rejected(RuntimeError):
    """Admission refused: tenant cap reached or service draining.

    Unlike :class:`Backpressure` this is not retryable within the
    session — the tenant was never admitted and owns no queue.
    """


@dataclass(frozen=True)
class ServeConfig:
    """The service's entire robustness envelope, as data."""

    #: Admission control: connects past this count are rejected.
    max_tenants: int = 1024
    #: Per-tenant bound on queued-but-unscored windows (backpressure).
    queue_depth: int = 8
    #: Per-tenant bound on out-of-order windows buffered while earlier
    #: ones are awaited; past it the gap is abandoned (masked).
    reorder_depth: int = 4
    #: Most windows scored per fused forward pass.
    max_batch: int = 256
    #: Seconds the batcher accumulates arrivals before scoring.
    batch_interval: float = 0.002
    #: Global queued-window bound past which new submissions are shed.
    shed_backlog: int = 4096
    #: Seconds a window may wait before it degrades instead of scoring.
    deadline: float = 1.0
    #: Consecutive unhealthy resolutions that open a tenant's breaker.
    breaker_threshold: int = 3
    #: Seconds an open breaker masks the tenant before half-opening.
    breaker_cooldown: float = 0.25
    #: Seconds ``stop()`` keeps scoring queued work before shedding it.
    drain_timeout: float = 5.0

    def __post_init__(self) -> None:
        for name in ("max_tenants", "queue_depth", "max_batch",
                     "shed_backlog", "breaker_threshold"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, "
                                 f"got {getattr(self, name)}")
        for name in ("reorder_depth",):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, "
                                 f"got {getattr(self, name)}")
        for name in ("batch_interval", "deadline", "breaker_cooldown",
                     "drain_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, "
                                 f"got {getattr(self, name)}")


@dataclass(frozen=True)
class WindowResult:
    """What one submitted window resolved to."""

    window: int
    status: str  #: one of :data:`STATUSES`
    severity: int | None  #: argmax class; ``None`` when masked/shed
    probabilities: tuple[float, ...] | None
    latency: float  #: seconds from submission to resolution


class _Request:
    """One queued window awaiting resolution."""

    __slots__ = ("window", "vector", "future", "enqueued", "probe")

    def __init__(self, window: int, vector: np.ndarray,
                 future: asyncio.Future, enqueued: float,
                 probe: bool = False) -> None:
        self.window = window
        self.vector = vector
        self.future = future
        self.enqueued = enqueued
        self.probe = probe  #: half-open breaker probe


class TenantSession:
    """One admitted tenant's ordered window stream.

    Created by :meth:`PredictionService.connect`; all state lives on the
    service's event loop, so no locking.  Results are resolved in window
    order per tenant: an out-of-order window waits in the bounded
    reorder buffer until its predecessors arrive (or the gap is
    abandoned).
    """

    def __init__(self, service: "PredictionService", tenant: str) -> None:
        self.service = service
        self.tenant = tenant
        self.next_window = 0  #: lowest window not yet accepted in order
        #: In-order windows ready for the batcher.
        self.pending: deque[_Request] = deque()
        #: Out-of-order windows waiting for their predecessors.
        self.reorder: dict[int, _Request] = {}
        #: Windows abandoned by a reorder-buffer overflow: if one
        #: finally arrives it is masked (too late), not "duplicate".
        self.skipped: set[int] = set()
        #: Windows answered without ever entering the queue (breaker
        #: fast-fail, shed) while the cursor was elsewhere; the cursor
        #: skips over them when it catches up.
        self.fastfailed: set[int] = set()
        self.last_good: tuple[float, ...] | None = None
        self.counts: dict[str, int] = {status: 0 for status in STATUSES}
        # -- circuit breaker ------------------------------------------------
        self.failures = 0  #: consecutive unhealthy resolutions
        self.breaker_open_until: float | None = None
        self.probing = False  #: half-open: one window is in flight
        self.breaker_trips = 0

    # -- breaker ------------------------------------------------------------

    def _breaker_state(self, now: float) -> str:
        if self.breaker_open_until is None:
            return "closed"
        if now < self.breaker_open_until:
            return "open"
        return "half-open"

    def _record(self, status: str) -> None:
        self.counts[status] += 1
        if status in _HEALTHY:
            self.failures = 0
            if self.probing:  # fresh probe closes the breaker
                self.breaker_open_until = None
                self.probing = False
        else:
            self.failures += 1
            if self.probing:  # failed probe re-opens it
                self.breaker_open_until = (time.monotonic()
                                           + self.service.config
                                           .breaker_cooldown)
                self.probing = False
                self.breaker_trips += 1
                self.service.metric_breaker.inc()
            elif (self.breaker_open_until is None
                  and self.failures
                  >= self.service.config.breaker_threshold):
                self.breaker_open_until = (time.monotonic()
                                           + self.service.config
                                           .breaker_cooldown)
                self.breaker_trips += 1
                self.service.metric_breaker.inc()

    # -- resolution ---------------------------------------------------------

    def _resolve(self, req: _Request, status: str,
                 probabilities: tuple[float, ...] | None) -> None:
        self._record(status)
        service = self.service
        service.metric_status[status].inc()
        latency = time.monotonic() - req.enqueued
        service.metric_latency.observe(latency)
        severity = (int(np.argmax(probabilities))
                    if probabilities is not None else None)
        if not req.future.done():
            req.future.set_result(WindowResult(
                window=req.window, status=status, severity=severity,
                probabilities=probabilities, latency=latency,
            ))

    def _degraded(self, req: _Request, *, allow_stale: bool = True) -> None:
        """Resolve ``req`` down the ladder: stale if possible, else masked."""
        if allow_stale and self.last_good is not None:
            self._resolve(req, "stale", self.last_good)
        else:
            self._resolve(req, "masked", None)

    def _consume(self, window: int) -> None:
        """A window answered outside the queue still consumes its
        in-order slot.

        Without this, a sequential tenant whose window ``w`` fast-failed
        (breaker open, overload shed) would wedge: its next submission
        ``w+1`` parks in the reorder buffer waiting for a ``w`` that was
        already answered and will never be resent.
        """
        if window == self.next_window:
            self.next_window += 1
            while self.next_window in self.fastfailed:
                self.fastfailed.discard(self.next_window)
                self.next_window += 1
            self._flush_reorder()
        elif window > self.next_window:
            self.fastfailed.add(window)
            # Bounded like ``skipped``: a stale entry only costs a very
            # late resubmission the "duplicate" label.
            while len(self.fastfailed) > 256:
                self.fastfailed.discard(min(self.fastfailed))

    # -- submission ---------------------------------------------------------

    async def submit(self, window: int, vector: np.ndarray) -> WindowResult:
        """Submit one window's raw per-server vector; await its result.

        ``vector`` is ``(n_servers, n_features)`` raw (unnormalised)
        features, exactly what :class:`StreamingPredictor` assembles.
        Raises :class:`Backpressure` (retryable) when this tenant's
        queue is full; a global overload instead resolves immediately to
        a ``shed`` result.
        """
        service = self.service
        now = time.monotonic()
        service.metric_submitted.inc()
        loop = asyncio.get_running_loop()

        # Duplicate delivery: the window was already accepted (resolved,
        # queued, or buffered) — repeat, never rescore.  A window the
        # reorder buffer abandoned is not a duplicate: it was never
        # served, and it is now too late to serve it in order.
        if window < self.next_window or window in self.reorder \
                or any(r.window == window for r in self.pending):
            req = _Request(window, vector, loop.create_future(), now)
            if window in self.skipped:
                self.skipped.discard(window)
                self._degraded(req, allow_stale=False)
            else:
                self._resolve(req, "duplicate", self.last_good)
            return await req.future

        # The breaker fast-fails without touching the queue; half-open
        # lets exactly one probe through to the batcher.
        state = self._breaker_state(now)
        if state == "open" or (state == "half-open" and self.probing):
            req = _Request(window, vector, loop.create_future(), now)
            self._degraded(req)
            self._consume(window)
            return await req.future

        if not service.accepting:
            req = _Request(window, vector, loop.create_future(), now)
            self._resolve(req, "shed", None)
            self._consume(window)
            return await req.future

        # Load shedding: protect the whole service before any queueing.
        if service.backlog >= service.config.shed_backlog:
            service.metric_load_shed.inc()
            req = _Request(window, vector, loop.create_future(), now)
            self._resolve(req, "shed", None)
            self._consume(window)
            return await req.future

        # Backpressure: this tenant's own bound.  Count queued + buffered
        # so a reordering flood cannot sidestep the bound via the buffer.
        if len(self.pending) + len(self.reorder) \
                >= service.config.queue_depth:
            service.metric_backpressure.inc()
            raise Backpressure(
                f"tenant {self.tenant}: queue full "
                f"({service.config.queue_depth} windows)")

        probe = state == "half-open"
        if probe:
            self.probing = True
        req = _Request(window, vector, loop.create_future(), now,
                       probe=probe)
        if window == self.next_window:
            self._accept(req)
            self._flush_reorder()
        else:  # window > self.next_window: out of order
            if len(self.reorder) >= service.config.reorder_depth \
                    or service.config.reorder_depth == 0:
                # Buffer exhausted: abandon the gap.  Everything buffered
                # (plus this window) is released in window order; the
                # missing windows resolve as masked if they ever arrive
                # (they will look like duplicates of the past).
                self.reorder[window] = req
                self._abandon_gap()
            else:
                self.reorder[window] = req
        service.wake.set()
        return await req.future

    def _accept(self, req: _Request) -> None:
        self.pending.append(req)
        self.next_window = req.window + 1
        self.service.backlog += 1
        self.service.metric_backlog.set(self.service.backlog)

    def _flush_reorder(self) -> None:
        while self.next_window in self.reorder:
            self._accept(self.reorder.pop(self.next_window))

    def _abandon_gap(self) -> None:
        """Skip past missing windows to the oldest buffered one."""
        oldest = min(self.reorder)
        logger.warning("tenant %s: reorder buffer full; abandoning "
                       "windows %d..%d", self.tenant, self.next_window,
                       oldest - 1)
        self.service.metric_gaps.inc(oldest - self.next_window)
        self.skipped.update(range(self.next_window, oldest))
        # The skipped set stays bounded even if abandoned windows never
        # arrive: beyond a small cap, forget the oldest (a very late
        # arrival then reads as "duplicate" — a harmless downgrade of
        # the label, not of the behaviour).
        while len(self.skipped) > 256:
            self.skipped.discard(min(self.skipped))
        self.next_window = oldest
        self._flush_reorder()

    # -- accounting ---------------------------------------------------------

    @property
    def healthy(self) -> bool:
        """No unhealthy resolution ever (fresh/duplicate only)."""
        return all(self.counts[s] == 0
                   for s in STATUSES if s not in _HEALTHY)


class PredictionService:
    """N tenants, one model, one batcher task.

    ``scorer`` is a :class:`repro.core.predictor.DeployedPredictor` (or
    anything with its ``predict_proba_rows`` / shape attributes).
    ``fault_plan`` optionally injects service-side chaos (slow-batch
    stalls); tenant-side chaos lives in the harness, not here — the
    service cannot tell a chaotic tenant from a real one, which is the
    point.
    """

    def __init__(self, scorer, config: ServeConfig | None = None,
                 fault_plan: ServiceFaultPlan | None = None) -> None:
        self.scorer = scorer
        self.config = config or ServeConfig()
        self.fault_plan = fault_plan
        self.tenants: dict[str, TenantSession] = {}
        self.rejected_tenants = 0
        self.accepting = False
        self.backlog = 0
        self.batches = 0
        self.wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._rr: deque[str] = deque()  #: round-robin tenant order
        # Resolve metrics once; the batch loop is the hot path.
        self.metric_submitted = REGISTRY.counter("serve.submitted")
        self.metric_status = {s: REGISTRY.counter(f"serve.{s}")
                              for s in STATUSES}
        self.metric_backpressure = REGISTRY.counter("serve.backpressure")
        self.metric_load_shed = REGISTRY.counter("serve.load_shed")
        self.metric_breaker = REGISTRY.counter("serve.breaker_trips")
        self.metric_gaps = REGISTRY.counter("serve.abandoned_windows")
        self.metric_deadline = REGISTRY.counter("serve.deadline_misses")
        self.metric_stalls = REGISTRY.counter("serve.injected_stalls")
        self.metric_admitted = REGISTRY.counter("serve.tenants_admitted")
        self.metric_rejected = REGISTRY.counter("serve.tenants_rejected")
        self.metric_batches = REGISTRY.counter("serve.batches")
        self.metric_batch_size = REGISTRY.histogram(
            "serve.batch_size", boundaries=BATCH_SIZE_BUCKETS)
        self.metric_latency = REGISTRY.histogram("serve.latency_seconds")
        self.metric_backlog = REGISTRY.gauge("serve.backlog")

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Start accepting tenants and spawn the batcher task."""
        if self._task is not None:
            raise RuntimeError("service already started")
        self.accepting = True
        self._task = asyncio.get_running_loop().create_task(
            self._batch_loop(), name="repro-serve-batcher")
        logger.info("prediction service up: max_tenants=%d max_batch=%d",
                    self.config.max_tenants, self.config.max_batch)

    async def stop(self) -> dict[str, int]:
        """Graceful drain: stop admissions, score the queue, account.

        Queued work is scored for up to ``drain_timeout`` seconds; any
        windows still queued or buffered after that resolve as ``shed``.
        Returns ``{"drained": scored-or-degraded, "shed": leftovers}``.
        """
        if self._task is None:
            raise RuntimeError("service not started")
        self.accepting = False
        # Everything resident right now: queued (backlog) plus windows
        # parked in reorder buffers, which the batcher cannot reach and
        # which therefore always end up shed.
        drained_from = self.backlog + sum(
            len(s.reorder) for s in self.tenants.values())
        self.wake.set()
        try:
            await asyncio.wait_for(self._task,
                                   timeout=self.config.drain_timeout)
        except asyncio.TimeoutError:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
        self._task = None
        shed = 0
        for session in self.tenants.values():
            leftovers = list(session.pending)
            session.pending.clear()
            leftovers.extend(session.reorder.values())
            session.reorder.clear()
            for req in sorted(leftovers, key=lambda r: r.window):
                session._resolve(req, "shed", None)
                shed += 1
        self.backlog = 0
        self.metric_backlog.set(0)
        logger.info("prediction service drained: %d scored, %d shed",
                    drained_from - shed, shed)
        return {"drained": drained_from - shed, "shed": shed}

    # -- admission ----------------------------------------------------------

    def connect(self, tenant: str) -> TenantSession:
        """Admit one tenant; raises :class:`Rejected` past the cap."""
        if not self.accepting:
            self.rejected_tenants += 1
            self.metric_rejected.inc()
            raise Rejected("service is not accepting tenants")
        if tenant in self.tenants:
            raise ValueError(f"tenant {tenant!r} already connected")
        if len(self.tenants) >= self.config.max_tenants:
            self.rejected_tenants += 1
            self.metric_rejected.inc()
            raise Rejected(
                f"tenant cap reached ({self.config.max_tenants})")
        session = TenantSession(self, tenant)
        self.tenants[tenant] = session
        self._rr.append(tenant)
        self.metric_admitted.inc()
        return session

    # -- the batcher --------------------------------------------------------

    def _assemble(self) -> list[tuple[TenantSession, _Request]]:
        """Drain up to ``max_batch`` in-order windows, round-robin.

        Deadline-expired requests are resolved down the ladder here and
        never reach the model; a whole sweep of the ring without
        progress ends the batch.
        """
        batch: list[tuple[TenantSession, _Request]] = []
        now = time.monotonic()
        deadline = self.config.deadline
        idle = 0
        while self._rr and len(batch) < self.config.max_batch \
                and idle < len(self._rr):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            session = self.tenants[tenant]
            if not session.pending:
                idle += 1
                continue
            idle = 0
            req = session.pending.popleft()
            self.backlog -= 1
            if now - req.enqueued > deadline:
                self.metric_deadline.inc()
                session._degraded(req)
                continue
            batch.append((session, req))
        self.metric_backlog.set(self.backlog)
        return batch

    async def _batch_loop(self) -> None:
        scorer = self.scorer
        while True:
            if self.backlog == 0:
                if not self.accepting:
                    return
                self.wake.clear()
                try:
                    await asyncio.wait_for(self.wake.wait(),
                                           timeout=_IDLE_WAIT)
                except asyncio.TimeoutError:
                    continue
            # Accumulate near-simultaneous arrivals into one batch.
            await asyncio.sleep(self.config.batch_interval)
            batch = self._assemble()
            if not batch:
                continue
            if self.fault_plan is not None:
                stall = self.fault_plan.batch_stall(self.batches)
                if stall > 0:
                    self.metric_stalls.inc()
                    await asyncio.sleep(stall)
            X = np.stack([req.vector for _, req in batch])
            probs = scorer.predict_proba_rows(X)
            for (session, req), row in zip(batch, probs):
                fresh = tuple(float(p) for p in row)
                session.last_good = fresh
                session._resolve(req, "fresh", fresh)
            self.batches += 1
            self.metric_batches.inc()
            self.metric_batch_size.observe(len(batch))
