"""Resilient multi-tenant prediction service.

The paper's deployment story ends with one model watching one
application (:mod:`repro.core.online`).  A shared HPC storage system has
hundreds of applications worth watching at once, and the marginal cost
of a prediction is a few tens of microseconds of matmul — the expensive
part is keeping a model process alive per consumer.  This package runs
**one** long-lived service instead: tenants stream their per-window
vectors in, the service micro-batches windows that arrive close together
across *all* tenants into a single fused forward pass
(:meth:`repro.core.predictor.DeployedPredictor.predict_proba_rows`, one
kernel matmul per layer for N tenants), and each tenant gets back
exactly the bits a private scorer would have produced.

The interesting part is the robustness envelope, because multi-tenant
means mutually-untrusted load:

* **backpressure** — per-tenant bounded ingest queues; a full queue
  raises :class:`Backpressure` and the client retries with jittered
  exponential backoff (:func:`repro.parallel.backoff_delay`);
* **admission control and load shedding** — a tenant cap at connect
  time, and a global backlog bound past which requests are shed
  instead of queued;
* **deadlines** — a request that waits longer than its deadline is
  never scored; it degrades instead of adding latency to everyone else;
* **a per-tenant circuit breaker** driving the degradation ladder
  *fresh → stale → masked → refuse*: repeated non-fresh outcomes trip
  the breaker, masking the tenant for a cooldown instead of letting it
  churn the batcher;
* **graceful drain** — shutdown stops admissions, scores what is
  queued within a drain budget, and accounts for every leftover
  request;
* **deterministic chaos** — :class:`repro.faults.ServiceFaultPlan`
  drives the tenant harness (:func:`run_soak`) with floods, stalls,
  disconnects, reordered/duplicated windows and slow-model stalls, all
  derived from the plan seed.

DESIGN.md §13 documents the policies; ``repro serve`` is the CLI
entry point.
"""

from repro.serve.service import (
    Backpressure,
    PredictionService,
    Rejected,
    ServeConfig,
    TenantSession,
    WindowResult,
)
from repro.serve.tenants import (
    SoakReport,
    TenantOutcome,
    run_soak,
    tenant_windows,
)

__all__ = [
    "Backpressure",
    "PredictionService",
    "Rejected",
    "ServeConfig",
    "SoakReport",
    "TenantOutcome",
    "TenantSession",
    "WindowResult",
    "run_soak",
    "tenant_windows",
]
