"""Quanterference — understanding and predicting cross-application I/O
interference in HPC storage systems.

A full reproduction of Egersdoerfer et al., SC 2024: a discrete-event
Lustre-like parallel file system simulator (standing in for the paper's
11-node testbed), IO500/DLIO/application workload generators, client- and
server-side window monitors, the degradation-labelling pipeline and the
kernel-based per-server neural network, plus an experiment harness
regenerating every table and figure of the paper's evaluation.

Quick tour::

    from repro import (
        ExperimentConfig, InterferenceSpec, run_pair, make_io500_task,
    )

    config = ExperimentConfig()
    target = make_io500_task("ior-easy-read", ranks=4, scale=0.5)
    noise = [InterferenceSpec("ior-easy-read", instances=3)]
    pair = run_pair(target, noise, config)   # baseline + interfered traces

See ``examples/`` for end-to-end training and runtime prediction, and
``benchmarks/`` for the paper's tables and figures.
"""

from repro.common import IORecord, OpType, ServerId, ServerKind, TimeWindow
from repro.core import (
    BINARY_THRESHOLDS,
    MULTICLASS_THRESHOLDS,
    Dataset,
    DegradationLabeller,
    InterferencePredictor,
    Normalizer,
    bin_level,
    confusion_matrix,
    evaluate,
    match_operations,
    train_test_split,
)
from repro.experiments import (
    ExperimentConfig,
    InterferenceSpec,
    Scenario,
    collect_windows,
    execute_run,
    generate_dataset,
    run_pair,
    standard_scenarios,
)
from repro.monitor import (
    ClientWindowAggregator,
    MonitoredRun,
    ServerMonitor,
    assemble_vectors,
)
from repro.sim import Cluster, ClusterConfig
from repro.workloads import (
    DLIOConfig,
    DLIOWorkload,
    EnzoWorkload,
    AmrexWorkload,
    OpenPMDWorkload,
    IorConfig,
    IorWorkload,
    MDTestConfig,
    MDTestWorkload,
    Workload,
    launch,
    launch_interference,
    make_io500_task,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # common
    "IORecord", "OpType", "ServerId", "ServerKind", "TimeWindow",
    # simulator
    "Cluster", "ClusterConfig",
    # workloads
    "Workload", "IorConfig", "IorWorkload", "MDTestConfig", "MDTestWorkload",
    "DLIOConfig", "DLIOWorkload", "EnzoWorkload", "AmrexWorkload",
    "OpenPMDWorkload", "make_io500_task", "launch", "launch_interference",
    # monitors
    "ClientWindowAggregator", "ServerMonitor", "MonitoredRun",
    "assemble_vectors",
    # core
    "BINARY_THRESHOLDS", "MULTICLASS_THRESHOLDS", "Dataset",
    "DegradationLabeller", "InterferencePredictor", "Normalizer",
    "bin_level", "confusion_matrix", "evaluate", "match_operations",
    "train_test_split",
    # experiments
    "ExperimentConfig", "InterferenceSpec", "Scenario", "collect_windows",
    "execute_run", "generate_dataset", "run_pair", "standard_scenarios",
]
