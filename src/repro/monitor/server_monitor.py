"""Server-side monitor: 1 Hz counter sampling plus window aggregation.

The paper's server-side monitor runs as an independent process on every
PFS server, pulling the Table II statistics once per second and shipping
window aggregates (sum / mean / std over the seconds of each window) to
the training server (§III-B). Here a simulator process samples every
server's cumulative counters at a fixed interval, converts counters to
per-interval deltas (gauges stay instantaneous) and offers the same
window aggregation.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.common.records import ServerId
from repro.common.windows import window_indices
from repro.monitor.schema import GAUGE_METRICS, SERVER_METRICS, SERVER_STATS
from repro.obs.metrics import REGISTRY
from repro.sim.cluster import Cluster

if TYPE_CHECKING:  # runtime import would cycle via repro.faults.inject
    from repro.faults.plan import FaultPlan

__all__ = ["ServerMonitor"]

#: Maps schema metric names to the cluster counter keys they derive from.
_COUNTER_SOURCES: dict[str, tuple[str, ...]] = {
    "ios_completed": ("reads_completed", "writes_completed"),
    "sectors_read": ("sectors_read",),
    "sectors_written": ("sectors_written",),
    "queue_insertions": ("queue_insertions",),
    "requests_merged": ("reads_merged", "writes_merged"),
    "io_ticks": ("io_ticks",),
    "weighted_time": ("weighted_time",),
    "mds_ops_completed": ("mds_ops_completed",),
}

_GAUGE_SOURCES: dict[str, str] = {
    "queue_depth": "queue_depth",
    "cache_dirty_bytes": "cache_dirty_bytes",
}


class ServerMonitor:
    """Samples every server's counters at a fixed interval.

    Call :meth:`start` before running the simulation; samples accumulate
    in :attr:`samples` as ``(time, server, metrics-dict)`` rows.

    With a :class:`~repro.faults.plan.FaultPlan` attached, the monitor
    injects telemetry faults *live* as it collects: samples are dropped,
    delivered late (appended to :attr:`samples` only once simulated time
    reaches their delivery time, i.e. out of sample-time order),
    duplicated, and per-server clock skew shifts recorded sample times.
    All decisions derive from the plan seed plus ``fault_scope``, so the
    faulted stream replays bit-identically.  Injection counts appear in
    the ``faults.monitor.*`` registry counters.
    """

    def __init__(self, cluster: Cluster, sample_interval: float = 0.25,
                 faults: "FaultPlan | None" = None,
                 fault_scope: str = "") -> None:
        if sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {sample_interval}"
            )
        self.cluster = cluster
        self.sample_interval = sample_interval
        self.samples: list[tuple[float, ServerId, dict[str, float]]] = []
        self._last_counters: dict[ServerId, dict[str, float]] = {}
        self._started = False
        self.faults = faults if faults is not None and \
            faults.has_telemetry_faults else None
        self.fault_scope = fault_scope
        self._fault_rng = None
        self._skews: dict[ServerId, float] = {}
        #: Heap of (delivery_time, seq, sample_time, server, metrics).
        self._delayed: list[tuple] = []
        self._delay_seq = 0
        self.samples_dropped = 0
        self.samples_delayed = 0
        self.samples_duplicated = 0

    def start(self) -> None:
        """Arm the sampling process on the cluster's environment."""
        if self._started:
            raise RuntimeError("monitor already started")
        self._started = True
        for server in self.cluster.servers:
            self._last_counters[server] = self.cluster.server_counters(server)
        if self.faults is not None:
            from repro.faults.inject import sample_clock_skews

            self._fault_rng = self.faults.rng("monitor", self.fault_scope)
            self._skews = sample_clock_skews(
                self.faults, list(self.cluster.servers), self.fault_scope
            )
        self.cluster.env.process(self._loop())

    def _emit(self, t: float, server: ServerId,
              metrics: dict[str, float]) -> bool:
        """Record one sample row, applying live telemetry faults.

        Returns ``False`` when the sample was dropped.  Delayed samples
        are parked on a heap and released by :meth:`_flush_delayed` once
        simulated time reaches their delivery time.
        """
        plan = self.faults
        if plan is None:
            self.samples.append((t, server, metrics))
            return True
        # Fixed-size draw block per sample: the stream stays aligned
        # whatever subset of fault kinds is enabled.
        u_drop, u_dup, u_delay, u_amount = self._fault_rng.random(4)
        if plan.sample_drop_rate and u_drop < plan.sample_drop_rate:
            self.samples_dropped += 1
            REGISTRY.counter("faults.monitor.samples_dropped").inc()
            return False
        t_obs = max(0.0, t + self._skews.get(server, 0.0))
        row = (t_obs, server, metrics)
        if plan.sample_delay_rate and u_delay < plan.sample_delay_rate:
            delivery = self.cluster.env.now + u_amount * plan.sample_delay_max
            self.samples_delayed += 1
            REGISTRY.counter("faults.monitor.samples_delayed").inc()
            self._delay_seq += 1
            heapq.heappush(self._delayed,
                           (delivery, self._delay_seq, *row))
        else:
            self.samples.append(row)
        if plan.sample_duplicate_rate and u_dup < plan.sample_duplicate_rate:
            self.samples_duplicated += 1
            REGISTRY.counter("faults.monitor.samples_duplicated").inc()
            self.samples.append((t_obs, server, dict(metrics)))
        return True

    def _flush_delayed(self, now: float) -> None:
        """Deliver parked samples whose delay has elapsed."""
        while self._delayed and self._delayed[0][0] <= now:
            _, _, t_obs, server, metrics = heapq.heappop(self._delayed)
            self.samples.append((t_obs, server, metrics))

    def _loop(self):
        env = self.cluster.env
        # Resolve metric handles once; the loop then pays one attribute
        # bump per sample row.
        sample_counter = REGISTRY.counter("monitor.server_samples")
        tick_counter = REGISTRY.counter("monitor.sample_ticks")
        last_sample = REGISTRY.gauge("monitor.last_sample_sim_time")
        faulty = self.faults is not None
        while True:
            yield env.timeout(self.sample_interval)
            t = env.now
            tick_counter.inc()
            last_sample.set(t)
            sample_counter.inc(len(self.cluster.servers))
            if faulty:
                self._flush_delayed(t)
            for server in self.cluster.servers:
                counters = self.cluster.server_counters(server)
                prev = self._last_counters[server]
                metrics: dict[str, float] = {}
                for name, sources in _COUNTER_SOURCES.items():
                    metrics[name] = sum(
                        counters[s] - prev[s] for s in sources
                    )
                for name, source in _GAUGE_SOURCES.items():
                    metrics[name] = counters[source]
                self._last_counters[server] = counters
                self._emit(t, server, metrics)

    def expected_samples(self, duration: float) -> int:
        """Rows a gap-free collection over ``duration`` would hold."""
        if duration <= 0:
            return 0
        ticks = int(duration / self.sample_interval + 1e-9)
        return ticks * len(self.cluster.servers)

    def coverage(self, duration: float) -> float:
        """Observed / expected sample fraction (capped at 1.0).

        Also published as the ``monitor.sample_coverage`` gauge, the
        monitors' headline gap signal.
        """
        expected = self.expected_samples(duration)
        cov = min(1.0, len(self.samples) / expected) if expected else 1.0
        REGISTRY.gauge("monitor.sample_coverage").set(cov)
        return cov

    def window_feature_arrays(
        self, window_size: float
    ) -> tuple[list[tuple[int, ServerId]], np.ndarray]:
        """Aggregate samples per (window, server) as sum/mean/std.

        A sample taken at time ``t`` summarises the preceding interval, so
        it belongs to the window containing ``t - interval/2``.

        Returns ``(keys, features)`` where row ``i`` of the
        ``(n_groups, len(SERVER_FEATURES))`` array holds the aggregates
        for ``keys[i]`` in :data:`~repro.monitor.schema.SERVER_FEATURES`
        order. The group-by runs vectorised over all samples at once
        (``np.bincount`` per metric column) instead of a Python loop per
        (window, server, metric, stat) — the former hot path of vector
        assembly.
        """
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        if not self.samples:
            return [], np.zeros((0, len(SERVER_METRICS) * len(SERVER_STATS)))
        n = len(self.samples)
        times = np.fromiter((t for t, _, _ in self.samples),
                            dtype=np.float64, count=n)
        values = np.array(
            [[row[m] for m in SERVER_METRICS] for _, _, row in self.samples],
            dtype=np.float64,
        )
        wins = window_indices(
            np.maximum(0.0, times - self.sample_interval / 2), window_size
        )
        # Dense server ids in first-seen order; group = (window, server).
        server_ids: dict[ServerId, int] = {}
        servers: list[ServerId] = []
        sidx = np.empty(n, dtype=np.int64)
        for i, (_, server, _) in enumerate(self.samples):
            j = server_ids.get(server)
            if j is None:
                j = server_ids[server] = len(servers)
                servers.append(server)
            sidx[i] = j
        codes = wins * len(servers) + sidx
        uniq, inverse = np.unique(codes, return_inverse=True)
        counts = np.bincount(inverse, minlength=len(uniq)).astype(np.float64)
        n_metrics = len(SERVER_METRICS)
        sums = np.empty((len(uniq), n_metrics))
        for c in range(n_metrics):
            sums[:, c] = np.bincount(inverse, weights=values[:, c],
                                     minlength=len(uniq))
        means = sums / counts[:, None]
        sq_dev = (values - means[inverse]) ** 2
        var = np.empty_like(sums)
        for c in range(n_metrics):
            var[:, c] = np.bincount(inverse, weights=sq_dev[:, c],
                                    minlength=len(uniq))
        stds = np.sqrt(var / counts[:, None])
        stacked = np.stack([sums, means, stds], axis=2)  # (g, metric, stat)
        features = stacked.reshape(len(uniq), n_metrics * len(SERVER_STATS))
        keys = [(int(code // len(servers)), servers[int(code % len(servers))])
                for code in uniq]
        return keys, features

    def window_features(
        self, window_size: float
    ) -> dict[tuple[int, ServerId], dict[str, float]]:
        """Dict view of :meth:`window_feature_arrays`, keyed by
        ``(window, server)`` with ``{metric}_{stat}`` feature names."""
        keys, features = self.window_feature_arrays(window_size)
        names = [f"{metric}_{stat}" for metric in SERVER_METRICS
                 for stat in SERVER_STATS]
        return {
            key: dict(zip(names, map(float, row)))
            for key, row in zip(keys, features)
        }
