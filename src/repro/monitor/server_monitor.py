"""Server-side monitor: 1 Hz counter sampling plus window aggregation.

The paper's server-side monitor runs as an independent process on every
PFS server, pulling the Table II statistics once per second and shipping
window aggregates (sum / mean / std over the seconds of each window) to
the training server (§III-B). Here a simulator process samples every
server's cumulative counters at a fixed interval, converts counters to
per-interval deltas (gauges stay instantaneous) and offers the same
window aggregation.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.common.records import ServerId
from repro.common.windows import window_index
from repro.monitor.schema import GAUGE_METRICS, SERVER_METRICS, SERVER_STATS
from repro.obs.metrics import REGISTRY
from repro.sim.cluster import Cluster

__all__ = ["ServerMonitor"]

#: Maps schema metric names to the cluster counter keys they derive from.
_COUNTER_SOURCES: dict[str, tuple[str, ...]] = {
    "ios_completed": ("reads_completed", "writes_completed"),
    "sectors_read": ("sectors_read",),
    "sectors_written": ("sectors_written",),
    "queue_insertions": ("queue_insertions",),
    "requests_merged": ("reads_merged", "writes_merged"),
    "io_ticks": ("io_ticks",),
    "weighted_time": ("weighted_time",),
    "mds_ops_completed": ("mds_ops_completed",),
}

_GAUGE_SOURCES: dict[str, str] = {
    "queue_depth": "queue_depth",
    "cache_dirty_bytes": "cache_dirty_bytes",
}


class ServerMonitor:
    """Samples every server's counters at a fixed interval.

    Call :meth:`start` before running the simulation; samples accumulate
    in :attr:`samples` as ``(time, server, metrics-dict)`` rows.
    """

    def __init__(self, cluster: Cluster, sample_interval: float = 0.25) -> None:
        if sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {sample_interval}"
            )
        self.cluster = cluster
        self.sample_interval = sample_interval
        self.samples: list[tuple[float, ServerId, dict[str, float]]] = []
        self._last_counters: dict[ServerId, dict[str, float]] = {}
        self._started = False

    def start(self) -> None:
        """Arm the sampling process on the cluster's environment."""
        if self._started:
            raise RuntimeError("monitor already started")
        self._started = True
        for server in self.cluster.servers:
            self._last_counters[server] = self.cluster.server_counters(server)
        self.cluster.env.process(self._loop())

    def _loop(self):
        env = self.cluster.env
        # Resolve metric handles once; the loop then pays one attribute
        # bump per sample row.
        sample_counter = REGISTRY.counter("monitor.server_samples")
        tick_counter = REGISTRY.counter("monitor.sample_ticks")
        last_sample = REGISTRY.gauge("monitor.last_sample_sim_time")
        while True:
            yield env.timeout(self.sample_interval)
            t = env.now
            tick_counter.inc()
            last_sample.set(t)
            sample_counter.inc(len(self.cluster.servers))
            for server in self.cluster.servers:
                counters = self.cluster.server_counters(server)
                prev = self._last_counters[server]
                metrics: dict[str, float] = {}
                for name, sources in _COUNTER_SOURCES.items():
                    metrics[name] = sum(
                        counters[s] - prev[s] for s in sources
                    )
                for name, source in _GAUGE_SOURCES.items():
                    metrics[name] = counters[source]
                self._last_counters[server] = counters
                self.samples.append((t, server, metrics))

    def window_features(
        self, window_size: float
    ) -> dict[tuple[int, ServerId], dict[str, float]]:
        """Aggregate samples per (window, server) as sum/mean/std.

        A sample taken at time ``t`` summarises the preceding interval, so
        it belongs to the window containing ``t - interval/2``.
        """
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        grouped: dict[tuple[int, ServerId], list[dict[str, float]]] = defaultdict(list)
        for t, server, metrics in self.samples:
            win = window_index(max(0.0, t - self.sample_interval / 2), window_size)
            grouped[(win, server)].append(metrics)
        out: dict[tuple[int, ServerId], dict[str, float]] = {}
        for key, rows in grouped.items():
            feats: dict[str, float] = {}
            for metric in SERVER_METRICS:
                values = np.array([row[metric] for row in rows], dtype=float)
                for stat in SERVER_STATS:
                    if stat == "sum":
                        v = float(values.sum())
                    elif stat == "mean":
                        v = float(values.mean())
                    else:
                        v = float(values.std())
                    feats[f"{metric}_{stat}"] = v
            out[key] = feats
        return out
