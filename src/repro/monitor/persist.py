"""Persistence for monitored runs.

The paper's pipeline is offline: traces and server metrics are collected
on the cluster, shipped to the training server and labelled later. This
module gives :class:`~repro.monitor.aggregator.MonitoredRun` a durable
on-disk form so collected runs can be archived, shared and re-labelled:

* ``records.dxt`` — the client trace in the DXT text format;
* ``samples.npz`` — the server metric samples as dense arrays;
* ``meta.json`` — job name, duration, server list and user metadata.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.common.records import ServerId, ServerKind
from repro.monitor.aggregator import MonitoredRun
from repro.monitor.darshan import read_dxt, write_dxt
from repro.monitor.schema import SERVER_METRICS

__all__ = ["save_run", "load_run", "save_paired_runs", "load_paired_runs"]

_META_FILE = "meta.json"
_RECORDS_FILE = "records.dxt"
_SAMPLES_FILE = "samples.npz"

_BASELINE_SUBDIR = "baseline"
_INTERFERED_SUBDIR = "interfered"


def _server_to_str(server: ServerId) -> str:
    return f"{server.kind.value}{server.index}"


def _server_from_str(text: str) -> ServerId:
    for kind in ServerKind:
        if text.startswith(kind.value) and text[len(kind.value):].isdigit():
            return ServerId(kind, int(text[len(kind.value):]))
    raise ValueError(f"unparseable server id: {text!r}")


def save_run(run: MonitoredRun, directory: str | pathlib.Path) -> pathlib.Path:
    """Write a run to ``directory`` (created if needed); returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / _RECORDS_FILE, "w") as fp:
        write_dxt(run.records, fp)

    times = np.array([t for t, _, _ in run.server_samples], dtype=float)
    servers = np.array([_server_to_str(s) for _, s, _ in run.server_samples])
    metrics = np.array(
        [[row[m] for m in SERVER_METRICS] for _, _, row in run.server_samples],
        dtype=float,
    ).reshape(len(run.server_samples), len(SERVER_METRICS))
    np.savez_compressed(directory / _SAMPLES_FILE, times=times,
                        servers=servers, metrics=metrics,
                        metric_names=np.array(SERVER_METRICS))

    meta = {
        "job": run.job,
        "duration": run.duration,
        "servers": [_server_to_str(s) for s in run.servers],
        "metadata": run.metadata,
    }
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2))
    return directory


def load_run(directory: str | pathlib.Path) -> MonitoredRun:
    """Read a run previously written by :func:`save_run`."""
    directory = pathlib.Path(directory)
    meta = json.loads((directory / _META_FILE).read_text())

    with open(directory / _RECORDS_FILE) as fp:
        records = read_dxt(fp)

    data = np.load(directory / _SAMPLES_FILE, allow_pickle=False)
    stored_names = [str(n) for n in data["metric_names"]]
    if stored_names != list(SERVER_METRICS):
        raise ValueError(
            "stored metric schema does not match this version: "
            f"{stored_names} vs {list(SERVER_METRICS)}"
        )
    samples = [
        (float(t), _server_from_str(str(s)),
         dict(zip(SERVER_METRICS, row.tolist())))
        for t, s, row in zip(data["times"], data["servers"], data["metrics"])
    ]

    return MonitoredRun(
        job=meta["job"],
        records=records,
        server_samples=samples,
        servers=[_server_from_str(s) for s in meta["servers"]],
        duration=float(meta["duration"]),
        metadata=meta.get("metadata", {}),
    )


def save_paired_runs(pair, directory: str | pathlib.Path) -> pathlib.Path:
    """Write a :class:`~repro.experiments.runner.PairedRuns` to disk.

    Layout: ``<directory>/baseline/`` and ``<directory>/interfered/``,
    each a :func:`save_run` directory.  Used by the run cache and by
    anyone archiving labelled-sweep raw material.
    """
    directory = pathlib.Path(directory)
    save_run(pair.baseline, directory / _BASELINE_SUBDIR)
    save_run(pair.interfered, directory / _INTERFERED_SUBDIR)
    return directory


def load_paired_runs(directory: str | pathlib.Path):
    """Read a pair previously written by :func:`save_paired_runs`."""
    from repro.experiments.runner import PairedRuns

    directory = pathlib.Path(directory)
    return PairedRuns(
        baseline=load_run(directory / _BASELINE_SUBDIR),
        interfered=load_run(directory / _INTERFERED_SUBDIR),
    )
