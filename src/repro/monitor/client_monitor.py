"""Client-side monitor: windowed aggregation of an application's records.

The paper's client-side monitor is a modified Darshan that buffers
per-request records in shared memory and periodically aggregates them per
time window (§III-A). Here the simulator's trace collector plays the role
of the SHM buffer; this module performs the aggregation: for a chosen
application (*target workload*), it attributes each completed operation to
the window containing its completion time and to the servers it touched,
producing one client-feature dict per (window, server).

Attribution rules (documented behaviour, exercised by tests):

* counts and bytes go to the window of the op's *end* time (an op is only
  knowable to the monitor once it completed);
* data bytes are split evenly across the stripe targets the op touched
  (striping spreads an extent uniformly for all practical patterns here);
* metadata ops count fully against the MDT;
* ``io_time`` is the op duration, split across touched servers like bytes.
"""

from __future__ import annotations

from collections import defaultdict

from repro.common.records import IORecord, ServerId
from repro.common.windows import window_index
from repro.monitor.schema import CLIENT_FEATURES

__all__ = ["ClientWindowAggregator"]


def _empty_features() -> dict[str, float]:
    return {name: 0.0 for name in CLIENT_FEATURES}


class ClientWindowAggregator:
    """Aggregates one application's I/O records into windowed features."""

    def __init__(self, window_size: float = 1.0) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        self.window_size = window_size

    def aggregate(
        self, records: list[IORecord], job: str
    ) -> dict[tuple[int, ServerId], dict[str, float]]:
        """Per-(window, server) client features for ``job``'s records."""
        out: dict[tuple[int, ServerId], dict[str, float]] = defaultdict(
            _empty_features
        )
        for rec in records:
            if rec.job != job:
                continue
            if not rec.servers:
                continue
            win = window_index(rec.end, self.window_size)
            share = 1.0 / len(rec.servers)
            for server in rec.servers:
                feats = out[(win, server)]
                feats["n_total"] += share
                feats[f"n_{rec.op.family}"] += share
                if rec.op.family == "read":
                    feats["bytes_read"] += rec.size * share
                elif rec.op.family == "write":
                    feats["bytes_written"] += rec.size * share
                feats["io_time"] += rec.duration * share
        for feats in out.values():
            feats["bytes_total"] = feats["bytes_read"] + feats["bytes_written"]
            feats["throughput"] = feats["bytes_total"] / self.window_size
            feats["iops"] = feats["n_total"] / self.window_size
        return dict(out)

    def window_ops(
        self, records: list[IORecord], job: str
    ) -> dict[int, list[IORecord]]:
        """Records of ``job`` grouped by completion window (for labelling)."""
        out: dict[int, list[IORecord]] = defaultdict(list)
        for rec in records:
            if rec.job == job:
                out[window_index(rec.end, self.window_size)].append(rec)
        return dict(out)
