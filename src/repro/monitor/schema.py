"""Canonical feature names for per-server vectors.

Keeping one registry guarantees the monitors, dataset assembly and the
trained model always agree on vector layout. The layout is::

    [ client features (10) | server features (len(SERVER_METRICS) * 3) ]

Client features follow the paper §III-A (request counts by type, byte
sums, actual I/O time, throughput, IOPS); server features are the
Table II metrics sampled once per second and aggregated per window as
sum, mean and standard deviation (§III-B).
"""

from __future__ import annotations

__all__ = [
    "CLIENT_FEATURES",
    "SERVER_METRICS",
    "SERVER_STATS",
    "SERVER_FEATURES",
    "VECTOR_FEATURES",
    "vector_dim",
]

#: Client-side per-(window, server) features (paper §III-A).
CLIENT_FEATURES: tuple[str, ...] = (
    "n_read",          # read requests completed in the window
    "n_write",         # write requests completed in the window
    "n_meta",          # metadata requests completed in the window
    "n_total",         # all requests (combined count)
    "bytes_read",      # bytes read
    "bytes_written",   # bytes written
    "bytes_total",     # combined bytes
    "io_time",         # total time spent in I/O calls
    "throughput",      # bytes_total / window size
    "iops",            # n_total / window size
)

#: Server-side per-second metrics (paper Table II + the queue gauges the
#: simulator exposes). Counter metrics are per-second deltas; gauge
#: metrics are instantaneous values at the sample tick.
SERVER_METRICS: tuple[str, ...] = (
    "ios_completed",      # I/O Speed: completed I/O requests
    "sectors_read",       # Device Metrics: disk sectors read
    "sectors_written",    # Device Metrics: disk sectors written
    "queue_insertions",   # R/W Queue (1): requests queued
    "requests_merged",    # R/W Queue (2): requests merged in the queue
    "io_ticks",           # R/W Queue (3): time the queue was non-empty
    "weighted_time",      # R/W Queue (4): queue-depth-weighted wait time
    "mds_ops_completed",  # metadata ops served (MDT only; 0 on OSTs)
    "queue_depth",        # gauge: outstanding requests at the tick
    "cache_dirty_bytes",  # gauge: dirty page-cache bytes at the tick
)

#: Which SERVER_METRICS are gauges (sampled values, not deltas).
GAUGE_METRICS: frozenset[str] = frozenset({"queue_depth", "cache_dirty_bytes"})

#: Per-window aggregation statistics over the per-second samples.
SERVER_STATS: tuple[str, ...] = ("sum", "mean", "std")

#: Flattened server feature names, e.g. ``ios_completed_sum``.
SERVER_FEATURES: tuple[str, ...] = tuple(
    f"{metric}_{stat}" for metric in SERVER_METRICS for stat in SERVER_STATS
)

#: Full per-server vector layout.
VECTOR_FEATURES: tuple[str, ...] = CLIENT_FEATURES + SERVER_FEATURES


def vector_dim() -> int:
    """Dimensionality of one per-server vector."""
    return len(VECTOR_FEATURES)
