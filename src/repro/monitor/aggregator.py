"""Vector assembly: the training server's input format.

The training server fills the periodically collected metrics into a set of
*per-server vectors* — one vector per storage server per window, holding
one window of client-side metrics targeting that server followed by the
server's own metrics (§III-C). :func:`assemble_vectors` produces exactly
that: an ``(n_windows, n_servers, n_features)`` array plus the window ids,
with missing (idle) cells zero-filled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.records import IORecord, ServerId
from repro.monitor.client_monitor import ClientWindowAggregator
from repro.monitor.schema import CLIENT_FEATURES, SERVER_FEATURES
from repro.monitor.server_monitor import ServerMonitor

__all__ = ["MonitoredRun", "assemble_vectors"]


@dataclass
class MonitoredRun:
    """Everything one monitored execution produced.

    Attributes
    ----------
    job:
        The target workload's job name.
    records:
        Full DXT-style trace (all jobs; filtering happens at aggregation).
    server_samples:
        Per-second server metric rows from the :class:`ServerMonitor`.
    servers:
        All server targets of the cluster, in stable order.
    duration:
        Simulated seconds the measured run took.
    """

    job: str
    records: list[IORecord]
    server_samples: list[tuple[float, ServerId, dict[str, float]]]
    servers: list[ServerId]
    duration: float
    metadata: dict = field(default_factory=dict)


def assemble_vectors(
    run: MonitoredRun,
    window_size: float = 1.0,
    sample_interval: float = 0.25,
) -> tuple[np.ndarray, list[int]]:
    """Build per-server vectors for every window of a monitored run.

    Returns ``(X, window_ids)`` where ``X`` has shape
    ``(n_windows, n_servers, n_features)`` with the feature layout of
    :data:`repro.monitor.schema.VECTOR_FEATURES`, and ``window_ids`` are
    the corresponding window indices. Windows beyond the run duration are
    not emitted; windows with no activity at all still appear (all-zero
    except gauges), because "idle" is a state the model must recognise.
    """
    client = ClientWindowAggregator(window_size).aggregate(run.records, run.job)
    # Re-aggregate raw samples through a throwaway monitor-shaped object.
    server_keys, server_feats = _server_features_from_samples(
        run.server_samples, window_size, sample_interval
    )
    n_windows = max(1, int(np.ceil(run.duration / window_size)))
    servers = run.servers
    server_pos = {sid: si for si, sid in enumerate(servers)}
    base = len(CLIENT_FEATURES)
    X = np.zeros((n_windows, len(servers), base + len(SERVER_FEATURES)),
                 dtype=float)
    # Fill only the active (window, server) cells; idle cells stay zero.
    for (w, sid), cf in client.items():
        si = server_pos.get(sid)
        if si is not None and 0 <= w < n_windows:
            X[w, si, :base] = [cf[name] for name in CLIENT_FEATURES]
    for (w, sid), row in zip(server_keys, server_feats):
        si = server_pos.get(sid)
        if si is not None and 0 <= w < n_windows:
            X[w, si, base:] = row
    return X, list(range(n_windows))


def _server_features_from_samples(
    samples: list[tuple[float, ServerId, dict[str, float]]],
    window_size: float,
    sample_interval: float,
) -> tuple[list[tuple[int, ServerId]], np.ndarray]:
    """Window-aggregate raw samples without needing a live cluster."""
    monitor = ServerMonitor.__new__(ServerMonitor)
    monitor.sample_interval = sample_interval
    monitor.samples = samples
    return ServerMonitor.window_feature_arrays(monitor, window_size)
