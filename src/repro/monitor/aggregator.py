"""Vector assembly: the training server's input format.

The training server fills the periodically collected metrics into a set of
*per-server vectors* — one vector per storage server per window, holding
one window of client-side metrics targeting that server followed by the
server's own metrics (§III-C). :func:`assemble_vectors` produces exactly
that: an ``(n_windows, n_servers, n_features)`` array plus the window ids,
with missing (idle) cells zero-filled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.records import IORecord, ServerId
from repro.monitor.client_monitor import ClientWindowAggregator
from repro.monitor.schema import CLIENT_FEATURES, SERVER_FEATURES
from repro.monitor.server_monitor import ServerMonitor
from repro.obs.metrics import REGISTRY

__all__ = ["MonitoredRun", "assemble_vectors", "select_labelled",
           "GAP_POLICIES", "assert_finite"]

#: Missing-data policies for (window, server) cells with no server
#: samples: ``zero`` keeps the historical zero fill, ``mean`` imputes
#: the server's mean over its observed windows, ``carry`` carries the
#: last observed window forward.
GAP_POLICIES: tuple[str, ...] = ("zero", "mean", "carry")


def assert_finite(X: np.ndarray, context: str = "") -> np.ndarray:
    """Raise :class:`ValueError` if ``X`` holds NaN/inf; returns ``X``.

    The guard every assembled feature array passes before it reaches
    training or inference — missing data must be masked and imputed
    explicitly, never smuggled through as NaN.
    """
    X = np.asarray(X)
    if X.size and not np.isfinite(X).all():
        bad = int(X.size - np.isfinite(X).sum())
        where = np.argwhere(~np.isfinite(X))[:3].tolist()
        raise ValueError(
            f"non-finite feature values{f' in {context}' if context else ''}: "
            f"{bad} bad entries, first at indices {where}"
        )
    return X


@dataclass
class MonitoredRun:
    """Everything one monitored execution produced.

    Attributes
    ----------
    job:
        The target workload's job name.
    records:
        Full DXT-style trace (all jobs; filtering happens at aggregation).
    server_samples:
        Per-second server metric rows from the :class:`ServerMonitor`.
    servers:
        All server targets of the cluster, in stable order.
    duration:
        Simulated seconds the measured run took.
    """

    job: str
    records: list[IORecord]
    server_samples: list[tuple[float, ServerId, dict[str, float]]]
    servers: list[ServerId]
    duration: float
    metadata: dict = field(default_factory=dict)


def select_labelled(window_ids: list[int], levels: dict[int, float]) -> list[int]:
    """Window ids (of :func:`assemble_vectors`) that carry a label.

    Order-preserving and duplicate-keeping; shared by the in-memory
    dataset path and the columnar :class:`repro.data.DatasetStore` so
    both keep exactly the same rows of an assembled vector array.
    """
    return [w for w in window_ids if w in levels]


def assemble_vectors(
    run: MonitoredRun,
    window_size: float = 1.0,
    sample_interval: float = 0.25,
    gap_policy: str = "zero",
    return_mask: bool = False,
):
    """Build per-server vectors for every window of a monitored run.

    Returns ``(X, window_ids)`` where ``X`` has shape
    ``(n_windows, n_servers, n_features)`` with the feature layout of
    :data:`repro.monitor.schema.VECTOR_FEATURES`, and ``window_ids`` are
    the corresponding window indices. Windows beyond the run duration are
    not emitted; windows with no activity at all still appear (all-zero
    except gauges), because "idle" is a state the model must recognise.

    Missing data is handled explicitly, never as NaN: a (window, server)
    cell that received *no server samples at all* (a telemetry gap, e.g.
    injected by :mod:`repro.faults`) is imputed per ``gap_policy`` (see
    :data:`GAP_POLICIES`); ``return_mask=True`` additionally returns the
    ``(n_windows, n_servers)`` boolean mask of cells that *did* have
    samples.  Gap counts land in the ``monitor.gap_cells`` counter and
    the ``monitor.gap_fraction`` gauge.  The assembled array is asserted
    finite before it is returned.
    """
    if gap_policy not in GAP_POLICIES:
        raise ValueError(
            f"unknown gap_policy {gap_policy!r} (choose from {GAP_POLICIES})"
        )
    client = ClientWindowAggregator(window_size).aggregate(run.records, run.job)
    # Re-aggregate raw samples through a throwaway monitor-shaped object.
    server_keys, server_feats = _server_features_from_samples(
        run.server_samples, window_size, sample_interval
    )
    n_windows = max(1, int(np.ceil(run.duration / window_size)))
    servers = run.servers
    server_pos = {sid: si for si, sid in enumerate(servers)}
    base = len(CLIENT_FEATURES)
    X = np.zeros((n_windows, len(servers), base + len(SERVER_FEATURES)),
                 dtype=float)
    mask = np.zeros((n_windows, len(servers)), dtype=bool)
    # Fill only the active (window, server) cells; idle cells stay zero.
    for (w, sid), cf in client.items():
        si = server_pos.get(sid)
        if si is not None and 0 <= w < n_windows:
            X[w, si, :base] = [cf[name] for name in CLIENT_FEATURES]
    for (w, sid), row in zip(server_keys, server_feats):
        si = server_pos.get(sid)
        if si is not None and 0 <= w < n_windows:
            X[w, si, base:] = row
            mask[w, si] = True
    _impute_gaps(X, mask, base, gap_policy)
    gaps = int(mask.size - mask.sum())
    if gaps:
        REGISTRY.counter("monitor.gap_cells").inc(gaps)
    REGISTRY.gauge("monitor.gap_fraction").set(
        gaps / mask.size if mask.size else 0.0
    )
    assert_finite(X, context=f"assemble_vectors({run.job})")
    if return_mask:
        return X, list(range(n_windows)), mask
    return X, list(range(n_windows))


def _impute_gaps(X: np.ndarray, mask: np.ndarray, base: int,
                 gap_policy: str) -> None:
    """Fill server-feature blocks of gap cells in place per policy.

    ``zero`` is a no-op (cells already zero); ``mean`` uses the server's
    mean over observed windows; ``carry`` repeats the last observed
    window.  A server with no observed windows at all stays zero under
    every policy — there is nothing to impute from.
    """
    if gap_policy == "zero" or mask.all():
        return
    n_windows, n_servers = mask.shape
    for si in range(n_servers):
        observed = mask[:, si]
        if not observed.any():
            continue
        if gap_policy == "mean":
            fill = X[observed, si, base:].mean(axis=0)
            X[~observed, si, base:] = fill
        elif gap_policy == "carry":
            last: np.ndarray | None = None
            for w in range(n_windows):
                if observed[w]:
                    last = X[w, si, base:]
                elif last is not None:
                    X[w, si, base:] = last


def _server_features_from_samples(
    samples: list[tuple[float, ServerId, dict[str, float]]],
    window_size: float,
    sample_interval: float,
) -> tuple[list[tuple[int, ServerId]], np.ndarray]:
    """Window-aggregate raw samples without needing a live cluster."""
    monitor = ServerMonitor.__new__(ServerMonitor)
    monitor.sample_interval = sample_interval
    monitor.samples = samples
    return ServerMonitor.window_feature_arrays(monitor, window_size)
