"""DXT-style trace log serialisation.

The paper's client-side monitor is a modified Darshan whose DXT
(extended tracing) logs record one line per I/O operation; the labelling
is done offline on such logs. This module serialises our
:class:`~repro.common.records.IORecord` traces into a DXT-like text
format and parses them back, so collected traces can be stored, shipped
and re-labelled offline exactly like the paper's pipeline — and so the
repository can exchange traces with external tooling.

Format (one record per line, tab-separated, ``#`` comments)::

    # quanterference-dxt v1
    <job>\t<rank>\t<op_id>\t<op>\t<path>\t<offset>\t<size>\t<start>\t<end>\t<servers>

``servers`` is a comma-separated list like ``ost0,ost3,mdt0``.
"""

from __future__ import annotations

import io
from typing import Iterable, TextIO

from repro.common.records import IORecord, OpType, ServerId, ServerKind

__all__ = ["write_dxt", "read_dxt", "dumps_dxt", "loads_dxt"]

_HEADER = "# quanterference-dxt v1"


def _server_to_str(server: ServerId) -> str:
    return f"{server.kind.value}{server.index}"


def _server_from_str(text: str) -> ServerId:
    for kind in ServerKind:
        if text.startswith(kind.value):
            suffix = text[len(kind.value):]
            if suffix.isdigit():
                return ServerId(kind, int(suffix))
    raise ValueError(f"unparseable server id: {text!r}")


def write_dxt(records: Iterable[IORecord], fp: TextIO) -> int:
    """Write records as DXT lines; returns the record count."""
    fp.write(_HEADER + "\n")
    count = 0
    for rec in records:
        servers = ",".join(_server_to_str(s) for s in rec.servers)
        if "\t" in rec.path or "\n" in rec.path:
            raise ValueError(f"path contains separator characters: {rec.path!r}")
        fp.write(
            f"{rec.job}\t{rec.rank}\t{rec.op_id}\t{rec.op.value}\t{rec.path}\t"
            f"{rec.offset}\t{rec.size}\t{rec.start!r}\t{rec.end!r}\t{servers}\n"
        )
        count += 1
    return count


def read_dxt(fp: TextIO) -> list[IORecord]:
    """Parse a DXT log written by :func:`write_dxt`."""
    first = fp.readline().strip()
    if first != _HEADER:
        raise ValueError(f"not a quanterference DXT log (header {first!r})")
    records: list[IORecord] = []
    for lineno, line in enumerate(fp, start=2):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 10:
            raise ValueError(f"line {lineno}: expected 10 fields, got {len(parts)}")
        job, rank, op_id, op, path, offset, size, start, end, servers = parts
        records.append(
            IORecord(
                job=job,
                rank=int(rank),
                op_id=int(op_id),
                op=OpType(op),
                path=path,
                offset=int(offset),
                size=int(size),
                start=float(start),
                end=float(end),
                servers=tuple(
                    _server_from_str(s) for s in servers.split(",") if s
                ),
            )
        )
    return records


def dumps_dxt(records: Iterable[IORecord]) -> str:
    """Serialise records to a DXT string."""
    buf = io.StringIO()
    write_dxt(records, buf)
    return buf.getvalue()


def loads_dxt(text: str) -> list[IORecord]:
    """Parse records from a DXT string."""
    return read_dxt(io.StringIO(text))
