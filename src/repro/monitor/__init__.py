"""Runtime monitors: the paper's client-side and server-side collectors.

* :mod:`repro.monitor.schema` — canonical feature-name registry shared by
  monitors, dataset assembly and the model;
* :mod:`repro.monitor.client_monitor` — Darshan-DXT-like aggregation of an
  application's I/O records into per-(window, server) client features;
* :mod:`repro.monitor.server_monitor` — a 1 Hz sampling process over every
  PFS server's counters, aggregated per window as sum/mean/std (Table II);
* :mod:`repro.monitor.aggregator` — assembles the final per-server vectors
  (client features ++ server features), the training server's input.
"""

from repro.monitor.schema import (
    CLIENT_FEATURES,
    SERVER_FEATURES,
    SERVER_METRICS,
    VECTOR_FEATURES,
)
from repro.monitor.client_monitor import ClientWindowAggregator
from repro.monitor.server_monitor import ServerMonitor
from repro.monitor.aggregator import MonitoredRun, assemble_vectors

__all__ = [
    "CLIENT_FEATURES",
    "SERVER_FEATURES",
    "SERVER_METRICS",
    "VECTOR_FEATURES",
    "ClientWindowAggregator",
    "ServerMonitor",
    "MonitoredRun",
    "assemble_vectors",
]
