"""Shim for offline editable installs (``pip install -e .`` without wheel)."""
from setuptools import setup

setup()
