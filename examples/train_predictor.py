#!/usr/bin/env python3
"""Train the kernel-based interference predictor end-to-end.

Follows the paper's full §III pipeline at laptop scale: sweep IO500
targets under increasing noise levels, label every time window from the
paired baseline run, assemble per-server vectors, train the kernel
network on an 80/20 split and print the Figure-3-style confusion matrix.

Run:  python examples/train_predictor.py
"""

from repro.experiments.datagen import collect_windows, standard_scenarios
from repro.experiments.fig3 import evaluate_bank
from repro.experiments.runner import ExperimentConfig
from repro.workloads.io500 import make_io500_task


def main() -> None:
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125, warmup=1.0)
    targets = [
        make_io500_task(task, ranks=4, scale=0.5)
        for task in ("ior-easy-read", "ior-easy-write", "mdt-hard-write")
    ]
    scenarios = standard_scenarios(
        max_level=2,
        tasks=("ior-easy-write", "ior-easy-read"),
        ranks=3,
        scale=0.25,
    )
    print(f"collecting windows: {len(targets)} targets x {len(scenarios)} "
          "scenarios (2 runs each) ...")
    bank = collect_windows(targets, scenarios, config)
    print(f"collected {len(bank)} labelled windows; "
          f"{(bank.levels >= 2).sum()} with >= 2x degradation\n")
    result = evaluate_bank(bank, "quickstart-io500")
    print(result.render())


if __name__ == "__main__":
    main()
