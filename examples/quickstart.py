#!/usr/bin/env python3
"""Quickstart: measure cross-application I/O interference in 30 lines.

Runs an IOR-style sequential-read job on the simulated Lustre cluster
twice — once alone, once while three concurrent read-noise instances
hammer the same OSTs from other compute nodes — and reports the
per-operation slowdown, reproducing the paper's core observation that
identical operations can take an order of magnitude longer under
interference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.labeling import match_operations
from repro.experiments.runner import ExperimentConfig, InterferenceSpec, run_pair
from repro.workloads.io500 import make_io500_task


def main() -> None:
    config = ExperimentConfig(window_size=0.25, warmup=1.0)
    target = make_io500_task("ior-easy-read", ranks=4, scale=0.5)
    noise = [InterferenceSpec("ior-easy-read", instances=3, ranks=3, scale=0.25)]

    print("running baseline + interfered executions ...")
    pair = run_pair(target, noise, config)

    ratios = np.array([
        interf.duration / max(base.duration, 1e-9)
        for base, interf in match_operations(
            pair.baseline.records, pair.interfered.records, target.name
        )
        if base.op.is_data
    ])
    print(f"matched data operations : {len(ratios)}")
    print(f"mean slowdown           : {ratios.mean():.1f}x")
    print(f"median slowdown         : {np.median(ratios):.1f}x")
    print(f"max slowdown            : {ratios.max():.1f}x")
    print(f"ops slowed >= 2x        : {(ratios >= 2).mean() * 100:.0f}%")


if __name__ == "__main__":
    main()
