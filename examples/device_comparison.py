#!/usr/bin/env python3
"""HDD vs SSD: how much of I/O interference is seek amplification?

Re-measures the critical interference cells (read/read, write/write,
read-under-write-noise) on two identically shaped clusters that differ
only in the OST device technology. On rotational disks competing read
streams seek-thrash each other (the paper's 29x Table I cell); on flash
the same contention is plain bandwidth sharing.

Run:  python examples/device_comparison.py
"""

from repro.experiments.devices import run_device_ablation
from repro.experiments.runner import ExperimentConfig


def main() -> None:
    config = ExperimentConfig(window_size=0.25, warmup=1.0)
    print("measuring interference cells on HDD- and flash-backed OSTs ...\n")
    result = run_device_ablation(config, target_scale=0.4)
    print(result.render())
    rr_hdd = result.cell("hdd", "read_read")
    rr_ssd = result.cell("ssd", "read_read")
    print(
        f"\nseek amplification factor for read/read interference: "
        f"{rr_hdd / rr_ssd:.1f}x"
    )


if __name__ == "__main__":
    main()
