#!/usr/bin/env python3
"""Record an application's DXT trace, then replay it under new conditions.

Shows the trace tooling end-to-end: run Enzo once and capture its
Darshan-DXT-style trace; serialise it to the DXT text format; parse it
back; replay the identical operation sequence (preserving compute gaps)
on a fresh cluster while read noise hammers the OSTs — and compare the
replayed op latencies against the original.

Run:  python examples/replay_trace.py
"""

import numpy as np

from repro.monitor.darshan import dumps_dxt, loads_dxt
from repro.experiments.runner import (
    ExperimentConfig,
    InterferenceSpec,
    execute_run,
    experiment_cluster,
)
from repro.sim.cluster import Cluster
from repro.workloads.apps import EnzoConfig, EnzoWorkload
from repro.workloads.base import launch
from repro.workloads.replay import TraceReplayWorkload


def main() -> None:
    config = ExperimentConfig(window_size=0.25, warmup=1.0)

    print("recording an Enzo run ...")
    enzo = EnzoWorkload(EnzoConfig(ranks=4, cycles=3))
    original = execute_run(enzo, [], config)
    trace = [r for r in original.records if r.job == enzo.name]
    print(f"captured {len(trace)} operations")

    dxt_text = dumps_dxt(trace)
    print(f"serialised to DXT: {len(dxt_text)} bytes; parsing back ...")
    replay = TraceReplayWorkload(loads_dxt(dxt_text), name="enzo-replay")

    print("replaying under read-noise interference ...")
    cluster = Cluster(experiment_cluster())
    from repro.workloads.base import launch_interference
    from repro.workloads.io500 import make_io500_task

    noise = make_io500_task("ior-easy-read", name="noise", ranks=3, scale=0.25)
    launch_interference(cluster, noise, [4, 5, 6], seed=3, record=False)
    cluster.env.run(until=1.0)
    handle = launch(cluster, replay, [0, 1, 2, 3], seed=7)
    cluster.env.run(until=handle.done)
    replayed = cluster.collector.for_job("enzo-replay")

    orig = {r.key[1:]: r.duration for r in trace}
    ratios = np.array([
        r.duration / max(orig[(r.rank, r.op_id)], 1e-9)
        for r in replayed if (r.rank, r.op_id) in orig and r.op.is_data
    ])
    print(f"\nreplayed data ops      : {len(ratios)}")
    print(f"median slowdown vs original run: {np.median(ratios):.2f}x")
    print(f"max slowdown                   : {ratios.max():.2f}x")


if __name__ == "__main__":
    main()
