#!/usr/bin/env python3
"""Runtime prediction: deploy a trained model against a new execution.

Mirrors the paper's deployment story (§III-C): after offline training,
the model "receives time window metrics from both the server-side and
client-side monitors in the same per-server vector format at runtime".
Here we train on IOR-style targets, then monitor an *Enzo* run the model
never saw under previously unseen mixed interference, and compare its
per-window severity predictions against the ground-truth labels computed
offline from the paired baseline.

Run:  python examples/online_prediction.py
"""

from repro.core.labeling import BINARY_THRESHOLDS, DegradationLabeller
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    bank_to_dataset,
    collect_windows,
    standard_scenarios,
)
from repro.experiments.runner import ExperimentConfig, InterferenceSpec, run_pair
from repro.workloads.apps import EnzoConfig, EnzoWorkload
from repro.workloads.io500 import make_io500_task


def main() -> None:
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125, warmup=1.0)

    # --- offline phase: train on benchmark sweeps -------------------------
    print("offline: collecting training windows from IO500 targets ...")
    targets = [
        make_io500_task(task, ranks=4, scale=0.5)
        for task in ("ior-easy-read", "ior-easy-write", "mdt-hard-write")
    ]
    scenarios = standard_scenarios(max_level=2, ranks=3, scale=0.25)
    bank = collect_windows(targets, scenarios, config)
    predictor = InterferencePredictor.train(
        bank_to_dataset(bank), BINARY_THRESHOLDS,
        config=TrainConfig(seed=0), seed=0,
    )
    print(f"trained on {len(bank)} windows\n")

    # --- runtime phase: monitor an unseen application ----------------------
    print("runtime: monitoring an Enzo run under mixed interference ...")
    enzo = EnzoWorkload(EnzoConfig(ranks=4, cycles=4))
    noise = [
        InterferenceSpec("ior-easy-write", instances=2, ranks=3, scale=0.25),
        InterferenceSpec("ior-easy-read", instances=1, ranks=3, scale=0.25),
    ]
    pair = run_pair(enzo, noise, config, seed_salt="online")
    predictions = predictor.predict_run(
        pair.interfered, config.window_size, config.sample_interval
    )
    truth = DegradationLabeller(window_size=config.window_size).window_labels(
        pair.baseline.records, pair.interfered.records, enzo.name
    )

    print(f"{'window':>8} {'predicted':>10} {'actual':>8}")
    agree = 0
    for w in sorted(truth):
        marker = "" if predictions.get(w) == truth[w] else "   <-- miss"
        agree += predictions.get(w) == truth[w]
        print(f"{w:>8} {predictions.get(w, '-'):>10} {truth[w]:>8}{marker}")
    print(f"\nwindow-level agreement on an unseen application: "
          f"{agree}/{len(truth)}")


if __name__ == "__main__":
    main()
