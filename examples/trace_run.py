#!/usr/bin/env python3
"""Trace one paired run and see where every request's time went.

Installs the span tracer, executes a baseline + interfered pair of a
small IOR-style read job, then exports the trace as JSONL and prints the
per-tier span summary — the flame-graph view of the simulator: how much
simulated time the run spent in client RPC windows, on the wire, inside
the OSTs and down at the disks, and how interference shifts that split.

Run:  python examples/trace_run.py
"""

import pathlib
import tempfile

from repro import obs
from repro.experiments.runner import ExperimentConfig, InterferenceSpec, run_pair
from repro.workloads.io500 import make_io500_task


def main() -> None:
    obs.configure_logging("INFO")
    config = ExperimentConfig(window_size=0.25, warmup=0.5, seed=1)
    target = make_io500_task("ior-easy-read", ranks=2, scale=0.1)
    noise = [InterferenceSpec("ior-easy-read", instances=2, ranks=2,
                              scale=0.1)]

    tracer = obs.install_tracer()
    try:
        pair = run_pair(target, noise, config)
    finally:
        obs.uninstall_tracer()

    out = pathlib.Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = obs.save_trace(tracer, out / "pair.trace.jsonl")
    print(f"\n{len(tracer.spans)} spans "
          f"({tracer.events_fired} kernel events) -> {trace_path}")
    print("summarise later with: "
          f"python -m repro obs {trace_path}\n")

    print(obs.render_span_summary(tracer.spans))

    slow = pair.interfered.duration / max(pair.baseline.duration, 1e-9)
    ost_total = sum(s.duration for s in tracer.spans
                    if s.name.startswith("ost.") and s.end is not None)
    disk_total = sum(s.duration for s in tracer.spans
                     if s.name == "disk.io" and s.end is not None)
    print(f"\ntarget slowdown under interference: {slow:.2f}x")
    print(f"simulated time inside OSTs: {ost_total:.3f}s, "
          f"at the disks: {disk_total:.3f}s")


if __name__ == "__main__":
    main()
