#!/usr/bin/env python3
"""Use interference predictions to throttle noise only when it hurts.

The paper argues quantitative prediction enables *targeted* mitigation
(its related work criticises uniform treatment). This example trains the
predictor, then runs the same contended scenario under three policies —
no mitigation, an always-on Lustre-TBF-style static rate limit on the
noise, and a limit toggled live by the streaming predictor — and compares
target latency and how long the noise was restricted.

Run:  python examples/predictive_mitigation.py
"""

from repro.core.labeling import BINARY_THRESHOLDS
from repro.core.nn.train import TrainConfig
from repro.core.predictor import InterferencePredictor
from repro.experiments.datagen import (
    Scenario,
    bank_to_dataset,
    collect_windows,
)
from repro.experiments.mitigation import run_mitigation
from repro.experiments.runner import ExperimentConfig, InterferenceSpec
from repro.workloads.io500 import make_io500_task


def main() -> None:
    config = ExperimentConfig(window_size=0.25, sample_interval=0.125,
                              warmup=1.0, seed=0)

    print("training the predictor on a small IO500 sweep ...")
    targets = [make_io500_task("ior-easy-write", ranks=4, scale=0.3)]
    scenarios = [
        Scenario("quiet"),
        Scenario("noise", (InterferenceSpec("ior-easy-write", instances=3,
                                            ranks=3, scale=0.25),)),
    ]
    bank = collect_windows(targets, scenarios, config)
    predictor = InterferencePredictor.train(
        bank_to_dataset(bank), BINARY_THRESHOLDS,
        config=TrainConfig(seed=0), seed=0,
    )

    print("comparing mitigation policies ...\n")
    target = make_io500_task("ior-easy-write", ranks=4, scale=0.5)
    result = run_mitigation(predictor, target, config)
    print(result.render())
    print(f"\ntarget speedup from predictive mitigation: "
          f"{result.improvement('predictive'):.2f}x "
          f"(static limit: {result.improvement('static'):.2f}x)")


if __name__ == "__main__":
    main()
