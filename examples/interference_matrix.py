#!/usr/bin/env python3
"""A compact Table I: the IO500 cross-interference slowdown matrix.

Reproduces the paper's Table I at reduced scale (a 4x4 sub-matrix by
default, the full 7x7 with ``--full``): each cell is the runtime slowdown
of the row task when the column task generates background noise from the
other compute nodes.

Run:  python examples/interference_matrix.py [--full]
"""

import sys

from repro.experiments.runner import ExperimentConfig
from repro.experiments.table1 import run_table1, shape_checks
from repro.workloads.io500 import IO500_TASKS


def main() -> None:
    full = "--full" in sys.argv
    tasks = IO500_TASKS if full else (
        "ior-easy-read", "ior-easy-write", "mdt-easy-write", "mdt-hard-write",
    )
    config = ExperimentConfig(window_size=0.25, warmup=1.0)
    print(f"computing {len(tasks)}x{len(tasks)} slowdown matrix "
          f"({len(tasks) * (len(tasks) + 1)} runs) ...\n")
    result = run_table1(config, tasks=tasks, target_scale=0.4,
                        noise_ranks=3, noise_scale=0.25)
    print(result.render())
    if full:
        print("\nqualitative shape vs the paper's Table I:")
        for name, ok in shape_checks(result).items():
            print(f"  [{'ok' if ok else 'MISS'}] {name}")


if __name__ == "__main__":
    main()
